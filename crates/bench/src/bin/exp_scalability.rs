//! E5 — scalability (RankClus EDBT'09 Fig. 7 analogue).
//!
//! Regenerates: wall-clock of RankClus versus the SimRank+spectral baseline
//! as the network grows. The published figure's shape: RankClus scales
//! roughly linearly in the number of links, the SimRank-based baseline
//! blows up (it is quadratic in objects), with a crossover at trivially
//! small networks. Criterion-grade timing for the same comparison lives in
//! `benches/bench_rankclus_scale.rs`; this binary prints the sweep as a
//! table.
//!
//! Run with: `cargo run --release -p hin-bench --bin exp_scalability`

use std::time::Instant;

use hin_bench::{markdown_table, simrank_spectral_baseline};
use hin_rankclus::{rankclus, RankClusConfig};
use hin_synth::BiNetConfig;

fn main() {
    println!("## E5 — runtime vs network size (k=3)\n");
    let mut rows = Vec::new();
    for &(nx, ny, links) in &[
        (10usize, 60usize, 100.0f64),
        (20, 120, 200.0),
        (30, 200, 400.0),
        (60, 400, 800.0),
        (120, 800, 1600.0),
    ] {
        let s = BiNetConfig {
            k: 3,
            nx_per_cluster: nx,
            ny_per_cluster: ny,
            links_per_x: links,
            cross: 0.15,
            zipf_exponent: 0.8,
            seed: 77,
        }
        .generate();
        let nnz = s.net.wxy.nnz();

        let t0 = Instant::now();
        let _ = rankclus(
            &s.net,
            &RankClusConfig {
                k: 3,
                seed: 1,
                n_restarts: 1,
                ..Default::default()
            },
        );
        let rc = t0.elapsed();

        // the baseline is quadratic: skip it once it stops being fun
        let baseline = if s.net.nx + s.net.ny <= 1300 {
            let t1 = Instant::now();
            let _ = simrank_spectral_baseline(&s.net, 3, 1);
            format!("{:.2?}", t1.elapsed())
        } else {
            "(skipped: quadratic)".to_string()
        };

        rows.push(vec![
            format!("{}x{}", 3 * nx, 3 * ny),
            nnz.to_string(),
            format!("{rc:.2?}"),
            baseline,
        ]);
    }
    markdown_table(
        &["|X| x |Y|", "links", "RankClus", "SimRank+spectral"],
        &rows,
    );
    println!(
        "\nexpected shape (per EDBT'09 Fig. 7): RankClus time grows \
         near-linearly with links; the SimRank-based competitor grows \
         super-quadratically and becomes unusable orders of magnitude \
         earlier."
    );
}
