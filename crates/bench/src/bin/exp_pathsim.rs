//! E11 — top-k similarity search (PathSim, tutorial §7(b)).
//!
//! Regenerates: the qualitative comparison of PathSim against PathCount,
//! the random-walk measure, SimRank and Personalized PageRank on peer
//! retrieval — the "find peers, not hubs" result of the PathSim paper —
//! quantified as *peer precision*: the fraction of an author's top-k that
//! shares both their planted area and their productivity tier.
//!
//! Run with: `cargo run --release -p hin-bench --bin exp_pathsim`

use hin_bench::markdown_table;
use hin_ranking::PageRankConfig;
use hin_similarity::{
    commuting_matrix, path_count, ppr_similarity_from, random_walk_measure, simrank, top_k_pathsim,
    MetaPath, SimRankConfig,
};
use hin_synth::DblpConfig;

fn main() {
    let data = DblpConfig {
        n_areas: 4,
        authors_per_area: 60,
        n_papers: 2_000,
        noise: 0.05,
        zipf_exponent: 1.1, // strong skew: hubs exist
        seed: 11,
        ..Default::default()
    }
    .generate();
    let hin = &data.hin;
    let n_authors = hin.node_count(data.author);

    // productivity (paper count) per author and tier function
    let ap = hin.adjacency(data.author, data.paper).expect("rel");
    let papers: Vec<usize> = (0..n_authors).map(|a| ap.row_nnz(a)).collect();
    let is_peer = |a: usize, b: usize| {
        data.author_area[a] == data.author_area[b]
            && papers[b] as f64 <= 3.0 * papers[a].max(1) as f64
            && papers[a] as f64 <= 3.0 * papers[b].max(1) as f64
    };

    // APVPA commuting matrix for the meta-path measures
    let apvpa = MetaPath::from_type_names(hin, &["author", "paper", "venue", "paper", "author"])
        .expect("path");
    let m = commuting_matrix(hin, &apvpa).expect("commutes");

    // homogeneous co-author graph for SimRank / PPR
    let co = data.coauthor_network();
    let sr = simrank(
        &co,
        &SimRankConfig {
            max_iters: 5,
            ..Default::default()
        },
    );

    // query set: mid-tier authors (not hubs, not one-hit) from each area
    let queries: Vec<usize> = (0..n_authors)
        .filter(|&a| papers[a] >= 5 && papers[a] <= 20)
        .take(40)
        .collect();
    const K: usize = 10;

    let mut precision = vec![0.0f64; 5];
    for &q in &queries {
        let eval = |list: &[(usize, f64)]| -> f64 {
            if list.is_empty() {
                return 0.0;
            }
            list.iter().filter(|&&(b, _)| is_peer(q, b)).count() as f64 / list.len() as f64
        };
        precision[0] += eval(&top_k_pathsim(&m, q, K));
        precision[1] += eval(&path_count(&m, q, K));
        precision[2] += eval(&random_walk_measure(&m, q, K));
        // SimRank top-k from the dense score matrix
        let mut sr_row: Vec<(usize, f64)> = (0..n_authors)
            .filter(|&b| b != q)
            .map(|b| (b, sr.scores.get(q, b)))
            .collect();
        sr_row.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        sr_row.truncate(K);
        precision[3] += eval(&sr_row);
        // PPR top-k
        let ppr = ppr_similarity_from(&co, q, &PageRankConfig::default());
        let mut ppr_row: Vec<(usize, f64)> = (0..n_authors)
            .filter(|&b| b != q)
            .map(|b| (b, ppr[b]))
            .collect();
        ppr_row.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        ppr_row.truncate(K);
        precision[4] += eval(&ppr_row);
    }

    println!(
        "## E11 — peer precision@{K} over {} mid-tier author queries (APVPA path)\n",
        queries.len()
    );
    let names = [
        "PathSim",
        "PathCount",
        "random walk",
        "SimRank (co-author)",
        "P-PageRank (co-author)",
    ];
    let rows: Vec<Vec<String>> = names
        .iter()
        .zip(&precision)
        .map(|(n, p)| vec![n.to_string(), format!("{:.3}", p / queries.len() as f64)])
        .collect();
    markdown_table(&["measure", "peer precision"], &rows);

    // qualitative sample: one query's lists side by side
    let q = queries[0];
    let name = |a: usize| {
        hin.node_name(hin_core::NodeRef {
            ty: data.author,
            id: a as u32,
        })
        .to_string()
    };
    println!(
        "\nsample query {} ({} papers, area {}):\n",
        name(q),
        papers[q],
        data.author_area[q]
    );
    let ps = top_k_pathsim(&m, q, 5);
    let pc = path_count(&m, q, 5);
    let rows: Vec<Vec<String>> = (0..5)
        .map(|i| {
            let fmt = |l: &[(usize, f64)]| {
                l.get(i)
                    .map(|&(b, _)| format!("{} ({}p)", name(b), papers[b]))
                    .unwrap_or_default()
            };
            vec![(i + 1).to_string(), fmt(&ps), fmt(&pc)]
        })
        .collect();
    markdown_table(&["rank", "PathSim", "PathCount"], &rows);
    println!(
        "\nexpected shape (per the PathSim paper): PathSim retrieves same-tier \
         peers; PathCount and the random-walk measure surface hub authors with \
         inflated productivity; SimRank/P-PageRank sit in between."
    );
}
