//! E2 — ranking on homogeneous networks (tutorial §2(b)ii; PageRank, HITS).
//!
//! Regenerates: top-k ranking comparison (PageRank vs HITS authority vs
//! degree) on the co-author projection, plus convergence-vs-damping
//! behaviour.
//!
//! Run with: `cargo run --release -p hin-bench --bin exp_ranking`

use hin_bench::markdown_table;
use hin_ranking::{degree_rank, hits, pagerank, top_k, PageRankConfig};
use hin_synth::DblpConfig;

fn main() {
    let data = DblpConfig {
        n_papers: 3_000,
        authors_per_area: 150,
        seed: 2,
        ..Default::default()
    }
    .generate();
    let co = data.coauthor_network();

    let pr = pagerank(&co, &PageRankConfig::default());
    let h = hits(&co, 1e-10, 200);
    let dg = degree_rank(&co);

    println!("## E2a — top-10 authors, three rankers on the co-author network\n");
    let name = |a: usize| {
        data.hin
            .node_name(hin_core::NodeRef {
                ty: data.author,
                id: a as u32,
            })
            .to_string()
    };
    let pr_top = top_k(&pr.scores, 10);
    let hits_top = top_k(&h.authority, 10);
    let deg_top = top_k(&dg, 10);
    let rows: Vec<Vec<String>> = (0..10)
        .map(|i| {
            vec![
                (i + 1).to_string(),
                name(pr_top[i]),
                name(hits_top[i]),
                name(deg_top[i]),
            ]
        })
        .collect();
    markdown_table(&["rank", "PageRank", "HITS authority", "degree"], &rows);

    // overlap measures
    let overlap = |a: &[usize], b: &[usize]| a.iter().filter(|x| b.contains(x)).count();
    println!(
        "\ntop-10 overlap: PR∩HITS = {}, PR∩degree = {}, HITS∩degree = {}",
        overlap(&pr_top, &hits_top),
        overlap(&pr_top, &deg_top),
        overlap(&hits_top, &deg_top),
    );

    println!("\n## E2b — PageRank convergence vs damping factor\n");
    let mut rows = Vec::new();
    for &d in &[0.5, 0.7, 0.85, 0.95, 0.99] {
        let cfg = PageRankConfig {
            damping: d,
            tol: 1e-10,
            max_iters: 500,
        };
        let r = pagerank(&co, &cfg);
        rows.push(vec![
            format!("{d:.2}"),
            r.iterations.to_string(),
            format!("{:.1e}", r.delta),
        ]);
    }
    markdown_table(&["damping", "iterations to 1e-10", "final delta"], &rows);
    println!("\nexpected shape: iterations grow as damping → 1.");
}
