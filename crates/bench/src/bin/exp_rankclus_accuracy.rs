//! E4 — RankClus accuracy on synthetic bi-typed networks (EDBT'09 §6.1,
//! Table 4 analogue).
//!
//! Five configurations varying *separation* (cross-cluster link fraction)
//! and *density* (links per target), as in the original sweep; NMI averaged
//! over 5 seeds for RankClus (authority and simple ranking) against the
//! paper's baselines: spectral clustering on SimRank similarity, and cosine
//! k-means on raw link vectors.
//!
//! Run with: `cargo run --release -p hin-bench --bin exp_rankclus_accuracy`

use hin_bench::{
    fmt_ms, kmeans_links_baseline, markdown_table, mean_std, simrank_spectral_baseline,
};
use hin_clustering::nmi;
use hin_rankclus::{rankclus, RankClusConfig, RankingMethod};
use hin_synth::BiNetConfig;

fn main() {
    // (name, cross, links_per_x) — Dataset1..5 of the paper's sweep:
    // separation degrading D1→D3, density varied at fixed medium
    // separation in D4 (sparse) and D5 (dense)
    let configs = [
        ("D1 cross=.20 den=100", 0.20, 100.0),
        ("D2 cross=.35 den=100", 0.35, 100.0),
        ("D3 cross=.45 den=100", 0.45, 100.0),
        ("D4 cross=.35 den=20", 0.35, 20.0),
        ("D5 cross=.35 den=300", 0.35, 300.0),
    ];
    const RUNS: u64 = 5;
    const K: usize = 3;

    println!("## E4 — NMI on five synthetic bi-typed configurations (5 runs)\n");
    let mut rows = Vec::new();
    for (name, cross, links) in configs {
        let mut scores: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for run in 0..RUNS {
            let s = BiNetConfig {
                k: K,
                nx_per_cluster: 10,
                ny_per_cluster: 100,
                links_per_x: links,
                cross,
                zipf_exponent: 0.8,
                seed: 100 + run,
            }
            .generate();

            let auth = rankclus(
                &s.net,
                &RankClusConfig {
                    k: K,
                    seed: run,
                    ..Default::default()
                },
            );
            scores[0].push(nmi(&auth.assignments, &s.x_labels));

            let simple = rankclus(
                &s.net,
                &RankClusConfig {
                    k: K,
                    ranking: RankingMethod::Simple,
                    seed: run,
                    ..Default::default()
                },
            );
            scores[1].push(nmi(&simple.assignments, &s.x_labels));

            let sr = simrank_spectral_baseline(&s.net, K, run);
            scores[2].push(nmi(&sr, &s.x_labels));

            let km = kmeans_links_baseline(&s.net, K, run);
            scores[3].push(nmi(&km, &s.x_labels));
        }
        let mut row = vec![name.to_string()];
        for s in &scores {
            let (m, sd) = mean_std(s);
            row.push(fmt_ms(m, sd));
        }
        rows.push(row);
    }
    markdown_table(
        &[
            "dataset",
            "RankClus-authority",
            "RankClus-simple",
            "SimRank+spectral",
            "k-means links",
        ],
        &rows,
    );
    println!(
        "\nexpected shape (per EDBT'09): RankClus-authority wins or ties \
         everywhere; degradation as separation falls (D1→D3) and at low \
         density (D4); SimRank+spectral competitive on easy configs but \
         costly (see bench_rankclus_scale); simple ranking trails authority."
    );
}
