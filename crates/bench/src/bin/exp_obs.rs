//! Observability experiment: telemetry must *see everything* and *cost
//! nothing* (well — under 5% on the warm path).
//!
//! Four phases over a synthetic DBLP world:
//!
//! 1. **Overhead gate** — one warm engine answers the same mixed workload
//!    through `execute` (untraced) and `execute_traced` (per-query stage
//!    timing + cache-outcome attribution), interleaved, median of several
//!    passes. The gate is traced ≤ 1.05× untraced: tracing is two clock
//!    reads and a few `Cell` stores per query, and this run keeps it
//!    honest.
//! 2. **Kernel counters** — install the process-global
//!    `hin_linalg::KernelCounters` sink, then drive both execution modes:
//!    full materialization must move the SpGEMM multiply-add counter,
//!    sparse-row propagation the SpVM one.
//! 3. **Serving telemetry** — a `Server` with a zero slow-query threshold
//!    serves the workload; every query must land in the stage histograms
//!    (admission / queue-wait / dispatch / plan / exec by mode × outcome /
//!    end-to-end) and in the bounded slow-query ring, plans attached.
//! 4. **Metrics page** — the router fleet renders as Prometheus text;
//!    spot-check the series exist.
//!
//! Emits `BENCH_obs.json` (histogram quantiles, flop counts, overhead
//! ratio) so the telemetry-cost trajectory is recorded.
//!
//! Run with: `cargo run --release -p hin-bench --bin exp_obs`
//! CI smoke: `cargo run --release -p hin-bench --bin exp_obs -- --smoke`

use std::sync::Arc;
use std::time::{Duration, Instant};

use hin_core::Hin;
use hin_linalg::KernelCounters;
use hin_query::{CacheConfig, Engine, ExecPolicy};
use hin_serve::{Router, RouterConfig, ServeConfig, Server, TelemetryConfig};
use hin_synth::DblpConfig;

/// One full pass of the workload through `f`, in milliseconds.
fn pass_ms(queries: &[String], mut f: impl FnMut(&str)) -> f64 {
    let t = Instant::now();
    for q in queries {
        f(q);
    }
    t.elapsed().as_secs_f64() * 1e3
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_papers, anchors, trials) = if smoke { (600, 8, 5) } else { (2_000, 16, 9) };

    let data = DblpConfig {
        n_areas: 4,
        authors_per_area: 60,
        n_papers,
        noise: 0.05,
        seed: 23,
        ..Default::default()
    }
    .generate();
    let hin: Arc<Hin> = Arc::new(data.hin);
    let queries = hin_bench::serve_workload(anchors);

    // ── phase 1: warm-path overhead of tracing ───────────────────────────
    let engine = Engine::from_arc(Arc::clone(&hin));
    for q in &queries {
        engine.execute(q).ok(); // warm the cache; errors gate below
    }
    let mut untraced = Vec::with_capacity(trials);
    let mut traced = Vec::with_capacity(trials);
    for _ in 0..trials {
        untraced.push(pass_ms(&queries, |q| {
            engine.execute(q).ok();
        }));
        traced.push(pass_ms(&queries, |q| {
            engine.execute_traced(q).0.ok();
        }));
    }
    let untraced_ms = median(&mut untraced);
    let traced_ms = median(&mut traced);
    let overhead = traced_ms / untraced_ms.max(1e-9);

    // ── phase 2: kernel counters see both execution modes ────────────────
    let sink = Arc::new(KernelCounters::default());
    hin_linalg::counters::install(Arc::clone(&sink));
    let eager = Engine::with_config(
        Arc::clone(&hin),
        CacheConfig::default(),
        ExecPolicy::eager(),
    );
    eager
        .execute("pathsim author-paper-venue-paper-author from author_a0_0")
        .expect("eager probe");
    let after_eager = sink.snapshot();
    let lazy = Engine::with_config(
        Arc::clone(&hin),
        CacheConfig::default(),
        ExecPolicy::promote_after(u32::MAX),
    );
    lazy.execute("pathsim author-paper-venue-paper-author from author_a0_0")
        .expect("lazy probe");
    let after_lazy = sink.snapshot();
    assert!(
        after_eager.spgemm_flops > 0,
        "materialization must move the SpGEMM flop counter"
    );
    assert!(
        after_lazy.spvm_flops > after_eager.spvm_flops,
        "row propagation must move the SpVM flop counter"
    );

    // ── phase 3: serving telemetry sees every query ──────────────────────
    let server = Server::start(
        Arc::clone(&hin),
        ServeConfig {
            workers: 4,
            telemetry: TelemetryConfig {
                enabled: true,
                slow_query: Duration::ZERO, // capture everything
                slow_log: 16,
            },
            ..ServeConfig::default()
        },
    );
    let mut errors = 0usize;
    for result in server.execute_many(&queries) {
        if result.is_err() {
            errors += 1;
        }
    }
    // capture lands after the reply is sent; read the log post-shutdown
    // (workers joined) so every capture is complete
    let obs_handle = server.handle();
    let stats = server.shutdown();
    let slow = obs_handle.slow_queries();
    assert_eq!(
        stats.e2e_ns.count(),
        stats.served,
        "every served query must land in the end-to-end histogram"
    );
    let exec_count: u64 = stats
        .exec_ns
        .iter()
        .flatten()
        .map(hin_telemetry::HistSnapshot::count)
        .sum();
    assert_eq!(
        exec_count, stats.served,
        "mode × outcome exec histograms must partition the served queries"
    );
    assert_eq!(slow.len(), 16, "zero threshold fills the bounded ring");
    assert_eq!(stats.slow_queries, stats.served, "…after capturing all");
    assert!(
        slow.iter().any(|s| !s.plan.is_empty()),
        "captured slow queries carry their EXPLAIN plan"
    );
    assert!(
        slow.iter().all(|s| s.total_ns >= s.exec_ns),
        "stage breakdown must nest inside the total"
    );

    // ── phase 4: the fleet renders as a metrics page ─────────────────────
    let router = Router::new(RouterConfig::default());
    router.register("dblp", Arc::clone(&hin));
    for q in queries.iter().take(12) {
        router.submit("dblp", q.clone()).wait().ok();
    }
    let page = router.stats().render_metrics();
    for series in [
        "# TYPE hin_served_total counter",
        "hin_router_routed_total 12",
        "hin_stage_queue_wait_seconds_count{dataset=\"dblp\"}",
        "hin_stage_exec_seconds_bucket{dataset=\"dblp\",mode=",
        "hin_e2e_seconds_sum{dataset=\"dblp\"}",
    ] {
        assert!(page.contains(series), "metrics page must carry {series}");
    }
    router.shutdown();

    let mut report = hin_bench::JsonReport::new();
    report.set("smoke", smoke);
    report.stamp_env(None);
    report.set("workload_queries", queries.len());
    report.set("trials", trials);
    report.set("untraced_pass_ms", format!("{untraced_ms:.4}"));
    report.set("traced_pass_ms", format!("{traced_ms:.4}"));
    report.set("trace_overhead_ratio", format!("{overhead:.4}"));
    report.set("spgemm_flops", after_lazy.spgemm_flops);
    report.set("spvm_flops", after_lazy.spvm_flops);
    report.set("scratch_reuses", after_lazy.scratch_reuses);
    report.set("serve_errors", errors);
    for (name, h) in [
        ("queue_wait", &stats.queue_wait_ns),
        ("plan", &stats.plan_ns),
        ("e2e", &stats.e2e_ns),
    ] {
        report.set(&format!("{name}_p50_us"), h.quantile(0.50) / 1_000);
        report.set(&format!("{name}_p99_us"), h.quantile(0.99) / 1_000);
    }
    report.set("slow_captured", stats.slow_queries);
    report.set("metrics_page_bytes", page.len());
    report.print_and_write("BENCH_obs.json");

    // ── acceptance gate: tracing must be ≤ 5% on the warm path ───────────
    // (+50 µs absolute slack so a sub-millisecond smoke pass on a noisy
    // 1-core CI runner doesn't fail on scheduler jitter alone)
    assert!(
        traced_ms <= untraced_ms * 1.05 + 0.05,
        "traced warm-path pass must stay within 5% of untraced \
         (untraced {untraced_ms:.4} ms vs traced {traced_ms:.4} ms = \
         {overhead:.3}×)"
    );
    assert_eq!(errors, 0, "workload must serve cleanly");
}
