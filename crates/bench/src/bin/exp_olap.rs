//! E12 — OLAP on information networks (tutorial §7(c); iNextCube VLDB'09
//! demo analogue).
//!
//! Regenerates: the area×year network cube over a bibliographic network,
//! its roll-ups, and per-cell network measures (size, venue density, top
//! attribute objects).
//!
//! Run with: `cargo run --release -p hin-bench --bin exp_olap`

use std::time::Instant;

use hin_bench::markdown_table;
use hin_olap::{Dimension, NetworkCube};
use hin_synth::DblpConfig;

fn main() {
    let data = DblpConfig {
        n_areas: 4,
        n_papers: 5_000,
        authors_per_area: 150,
        years: 8,
        seed: 8,
        ..Default::default()
    }
    .generate();
    let star = data.star();
    let author_arm = star.arm_by_name("author").expect("author arm");
    let venue_arm = star.arm_by_name("venue").expect("venue arm");

    let t0 = Instant::now();
    let cube = NetworkCube::build(
        star.clone(),
        vec![
            Dimension::new(
                "area",
                (0..4).map(|a| format!("area{a}")).collect(),
                data.paper_area.iter().map(|&a| a as u32).collect(),
            ),
            Dimension::new(
                "year",
                (0..8).map(|y| format!("y{y}")).collect(),
                data.paper_year.clone(),
            ),
        ],
    );
    let build = t0.elapsed();
    let t1 = Instant::now();
    let by_area = cube.roll_up(1);
    let rollup = t1.elapsed();

    println!(
        "## E12 — area×year network cube over {} papers\n",
        star.n_center
    );
    println!(
        "cells: {} fine, {} after year roll-up; build {:?}, roll-up {:?}\n",
        cube.cell_count(),
        by_area.cell_count(),
        build,
        rollup
    );

    let mut rows = Vec::new();
    for area in 0..4u32 {
        let cell = by_area.cell(&[area]).expect("area cell");
        let top_authors: Vec<String> = cell
            .top_attributes(author_arm, 3)
            .iter()
            .map(|&(a, m)| format!("{} ({m:.0})", star.arms[author_arm].names[a as usize]))
            .collect();
        rows.push(vec![
            format!("area{area}"),
            cell.size().to_string(),
            format!("{:.2}", cell.density(author_arm)),
            cell.attribute_coverage(venue_arm).to_string(),
            top_authors.join(", "),
        ]);
    }
    markdown_table(
        &[
            "cell",
            "papers",
            "authors/paper",
            "venues used",
            "top authors (link mass)",
        ],
        &rows,
    );

    // slice: one year, per-area sizes
    println!("\n### slice year=3\n");
    let y3 = cube.slice(1, 3);
    let mut rows: Vec<Vec<String>> = y3
        .cells()
        .map(|(c, v)| vec![format!("area{}", c[0]), v.size().to_string()])
        .collect();
    rows.sort();
    markdown_table(&["cell", "papers"], &rows);
    println!(
        "\nexpected shape: cells partition the corpus; roll-up preserves \
         total membership; per-cell top authors come from the cell's own \
         planted area."
    );
}
