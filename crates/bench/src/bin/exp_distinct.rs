//! E9 — object distinction (DISTINCT ICDE'07, Table 3 analogue).
//!
//! Regenerates: pairwise-F1 of reference partitioning as the number of
//! merged identities grows, in both the cross-area (easy) and same-area
//! (hard) regimes, with a coauthor-only ablation standing in for the
//! paper's single-feature baselines.
//!
//! Run with: `cargo run --release -p hin-bench --bin exp_distinct`

use hin_bench::{fmt_ms, markdown_table, mean_std};
use hin_cleaning::{distinct, DistinctConfig, ReferenceContext};
use hin_clustering::{pairwise_f1, AgglomerativeStop};
use hin_synth::{AmbiguousConfig, DblpConfig};

fn contexts(data: &hin_synth::AmbiguousData) -> Vec<ReferenceContext> {
    data.refs
        .iter()
        .map(|r| ReferenceContext::new(vec![r.coauthors.clone(), vec![r.venue], r.terms.clone()]))
        .collect()
}

fn main() {
    const RUNS: u64 = 5;
    println!("## E9 — pairwise F1 vs number of merged identities (5 runs)\n");
    let mut rows = Vec::new();
    for &k in &[2usize, 4, 6, 8] {
        for &same_area in &[false, true] {
            let mut full = Vec::new();
            let mut coauthor_only = Vec::new();
            for run in 0..RUNS {
                let data = AmbiguousConfig {
                    k_identities: k,
                    min_refs: 4,
                    same_area,
                    dblp: DblpConfig {
                        n_papers: 2_500,
                        authors_per_area: 60,
                        seed: 300 + run,
                        ..Default::default()
                    },
                    seed: run,
                }
                .generate();
                let refs = contexts(&data);
                // full context, identity count known (the paper's protocol)
                let labels = distinct(
                    &refs,
                    &DistinctConfig {
                        weights: vec![0.5, 0.3, 0.2],
                        stop: AgglomerativeStop::NumClusters(k),
                    },
                );
                full.push(pairwise_f1(&labels, &data.truth).f1);
                // ablation: coauthors only
                let labels = distinct(
                    &refs,
                    &DistinctConfig {
                        weights: vec![1.0, 0.0, 0.0],
                        stop: AgglomerativeStop::NumClusters(k),
                    },
                );
                coauthor_only.push(pairwise_f1(&labels, &data.truth).f1);
            }
            let (fm, fs) = mean_std(&full);
            let (cm, cs) = mean_std(&coauthor_only);
            rows.push(vec![
                k.to_string(),
                if same_area { "same area" } else { "cross area" }.to_string(),
                fmt_ms(fm, fs),
                fmt_ms(cm, cs),
            ]);
        }
    }
    markdown_table(
        &[
            "identities",
            "regime",
            "full-context F1",
            "coauthor-only F1",
        ],
        &rows,
    );
    println!(
        "\nexpected shape (per ICDE'07): F1 degrades slowly with the number \
         of merged identities; cross-area cases stay near-perfect (venues \
         and terms separate them), same-area cases are harder and lean on \
         coauthor structure; combining link types beats any single one."
    );
}
