//! Serving-layer experiment: throughput scaling across worker counts and
//! cache budgets, with served results verified against the single-threaded
//! engine.
//!
//! Emits a single JSON object so the serving perf trajectory is recorded
//! from the first PR that has a serving layer.
//!
//! Run with: `cargo run --release -p hin-bench --bin exp_serve`
//! CI smoke: `cargo run --release -p hin-bench --bin exp_serve -- --smoke`

use std::sync::Arc;
use std::time::Instant;

use hin_query::{CacheConfig, Engine};
use hin_serve::{ServeConfig, Server, ServerStats};
use hin_synth::DblpConfig;

struct Run {
    qps: f64,
    ms: f64,
    stats: ServerStats,
}

/// Serve the whole workload `rounds` times on a fresh server; return
/// aggregate throughput and final stats.
fn run(
    hin: &Arc<hin_core::Hin>,
    workers: usize,
    cache: CacheConfig,
    queries: &[String],
    rounds: usize,
) -> Run {
    let server = Server::start(
        Arc::clone(hin),
        ServeConfig {
            workers,
            batch_max: 32,
            cache,
            ..ServeConfig::default()
        },
    );
    let t = Instant::now();
    for _ in 0..rounds {
        for result in server.execute_many(queries) {
            result.expect("workload query");
        }
    }
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let served = (rounds * queries.len()) as f64;
    Run {
        qps: served / (ms / 1e3),
        ms,
        stats: server.shutdown(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_papers, anchors, rounds) = if smoke { (600, 8, 2) } else { (2_000, 24, 3) };

    let data = DblpConfig {
        n_areas: 4,
        authors_per_area: 60,
        n_papers,
        noise: 0.05,
        seed: 11,
        ..Default::default()
    }
    .generate();
    let hin = Arc::new(data.hin);
    let queries = hin_bench::serve_workload(anchors);
    let budget = 1 << 20; // 1 MiB: smaller than the product working set

    // correctness first: a bounded 4-worker server must agree with the
    // single-threaded unbounded engine on every query
    let reference = Engine::from_arc(Arc::clone(&hin));
    let server = Server::start(
        Arc::clone(&hin),
        ServeConfig {
            workers: 4,
            batch_max: 32,
            cache: CacheConfig::bounded(budget),
            ..ServeConfig::default()
        },
    );
    let mut mismatches = 0usize;
    for (q, served) in queries.iter().zip(server.execute_many(&queries)) {
        if served != reference.execute(q) {
            mismatches += 1;
        }
    }
    let _ = server.shutdown();
    assert_eq!(mismatches, 0, "served results diverged from the reference");

    // throughput: 1 vs 2 vs 4 workers, bounded cache; plus unbounded 4
    let bounded: Vec<(usize, Run)> = [1usize, 2, 4]
        .into_iter()
        .map(|w| {
            (
                w,
                run(&hin, w, CacheConfig::bounded(budget), &queries, rounds),
            )
        })
        .collect();
    let unbounded4 = run(&hin, 4, CacheConfig::default(), &queries, rounds);

    let qps1 = bounded[0].1.qps;
    let qps4 = bounded[2].1.qps;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut report = hin_bench::JsonReport::new();
    report.set("smoke", smoke);
    report.stamp_env(Some(budget));
    report.set("workload_queries", queries.len());
    report.set("rounds", rounds);
    report.set("result_mismatches", mismatches);
    for (w, r) in &bounded {
        report.set(&format!("bounded_{w}w_ms"), format!("{:.3}", r.ms));
        report.set(&format!("bounded_{w}w_qps"), format!("{:.1}", r.qps));
        report.set(&format!("bounded_{w}w_evictions"), r.stats.cache_evictions);
        report.set(&format!("bounded_{w}w_cache_bytes"), r.stats.cache_bytes);
        report.set(
            &format!("bounded_{w}w_coalesced_waits"),
            r.stats.cache_coalesced_waits,
        );
        report.set(
            &format!("bounded_{w}w_dup_computes"),
            r.stats.cache_dup_computes,
        );
        report.set(&format!("bounded_{w}w_batches"), r.stats.batches);
    }
    report.set("unbounded_4w_ms", format!("{:.3}", unbounded4.ms));
    report.set("unbounded_4w_qps", format!("{:.1}", unbounded4.qps));
    report.set("unbounded_4w_cache_bytes", unbounded4.stats.cache_bytes);
    report.set("speedup_4w_vs_1w", format!("{:.2}", qps4 / qps1.max(1e-9)));
    // record the serving perf trajectory at the repo root (CI uploads it)
    report.print_and_write("BENCH_serve.json");

    let (_, four) = &bounded[2];
    assert!(
        four.stats.cache_evictions > 0,
        "bounded cache must evict on this workload"
    );
    assert!(
        four.stats.cache_bytes <= budget,
        "resident bytes must respect the budget"
    );
    assert_eq!(
        four.stats.cache_dup_computes, 0,
        "the in-flight table must prevent duplicate concurrent computations"
    );
    // The scaling assertion needs hardware that can actually run 4
    // workers in parallel; on fewer cores the run still verifies
    // correctness, bounding and eviction, and records the numbers.
    if !smoke && cores >= 4 {
        assert!(
            qps4 > 2.0 * qps1,
            "4 workers must deliver >2x the 1-worker throughput \
             (got {qps1:.1} vs {qps4:.1} qps on {cores} cores)"
        );
    } else if cores < 4 {
        eprintln!(
            "note: {cores} core(s) available — scaling assertion skipped, \
             throughput recorded for trend tracking"
        );
    }
}
