//! Parallel-kernel experiment: what do the row-parallel SpMM kernels and
//! the multi-anchor block kernel buy over their serial / per-anchor
//! baselines?
//!
//! Three phases over deterministic random sparse matrices:
//!
//! 1. **Parallel SpGEMM** — one product, serial `spgemm` vs
//!    `spgemm_parallel` on the pool. Results must be bit-identical; the
//!    ≥ 1.5× scaling gate only applies on machines with ≥ 2 cores (a
//!    1-core box still runs the parallel code path and records the
//!    numbers for trend tracking).
//! 2. **Parallel chain** — a 3-matrix `spmm_chain` vs
//!    `spmm_chain_parallel`, same identity and the same core-gated
//!    assertion.
//! 3. **Block batch** — k same-span anchors propagated one `spvm_chain`
//!    at a time (fresh scratch per anchor, exactly what k independent
//!    anchored queries cost) vs one `spmm_block_chain` over a k-row
//!    [`SparseBlock`]. Rows must be bit-identical; the ≥ 1.3× gate is
//!    unconditional — the win is amortized scratch, not parallelism, so
//!    it holds on a single core.
//!
//! Emits a single JSON object (also written to `BENCH_parallel.json` at
//! the repo root) so the kernel-perf trajectory is recorded.
//!
//! Run with: `cargo run --release -p hin-bench --bin exp_parallel`
//! CI smoke: `cargo run --release -p hin-bench --bin exp_parallel -- --smoke`

use std::time::Instant;

use hin_linalg::{
    spmm_block_chain, spmm_chain, spmm_chain_parallel, spvm_chain, Csr, SparseBlock, SparseVec,
};

/// Deterministic 64-bit LCG (top-33-bit output) — no `rand` dependency,
/// same matrices on every run and every machine.
fn lcg(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

/// A random sparse matrix with ~`nnz` entries and small-integer weights
/// (1..=3), so every product entry is exact and bit-comparison is sound.
fn random_csr(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> Csr {
    let mut s = seed;
    let triplets: Vec<(u32, u32, f64)> = (0..nnz)
        .map(|_| {
            let r = (lcg(&mut s) as usize % nrows) as u32;
            let c = (lcg(&mut s) as usize % ncols) as u32;
            let w = (lcg(&mut s) % 3 + 1) as f64;
            (r, c, w)
        })
        .collect();
    Csr::from_triplets(nrows, ncols, triplets)
}

/// Median of `reps` timings of `run`, plus the last result.
fn median_ms<R>(reps: usize, mut run: impl FnMut() -> R) -> (f64, R) {
    let mut times = Vec::with_capacity(reps);
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        out = Some(run());
        times.push(t.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], out.expect("reps >= 1"))
}

/// Panic unless two matrices are bit-identical (structure and value bits).
fn assert_bit_identical(got: &Csr, want: &Csr, context: &str) {
    let (gi, gj, gv) = got.parts();
    let (wi, wj, wv) = want.parts();
    assert_eq!(gi, wi, "{context}: indptr differs");
    assert_eq!(gj, wj, "{context}: indices differ");
    for (g, w) in gv.iter().zip(wv) {
        assert_eq!(g.to_bits(), w.to_bits(), "{context}: value bits differ");
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, m, deg, reps, k_anchors) = if smoke {
        (8_000usize, 6_000usize, 6usize, 3usize, 32usize)
    } else {
        (30_000, 20_000, 8, 7, 48)
    };
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    // Force ≥ 2 so the pool path (partition, spawn, stitch) actually runs
    // even on a 1-core box; the scaling gate below stays core-gated.
    let threads = hin_linalg::kernel_threads().max(2);

    let a = random_csr(n, m, deg * n, 0xA5A5);
    let b = random_csr(m, n, deg * m, 0x5A5A);
    let c = random_csr(n, m, deg * n, 0xC3C3);

    // ── phase 1: serial vs parallel SpGEMM ───────────────────────────────
    let (serial_spgemm_ms, serial_product) = median_ms(reps, || a.spgemm(&b));
    let (parallel_spgemm_ms, parallel_product) = median_ms(reps, || a.spgemm_parallel(&b, threads));
    assert_bit_identical(&parallel_product, &serial_product, "spgemm");
    let spgemm_speedup = serial_spgemm_ms / parallel_spgemm_ms.max(1e-9);

    // ── phase 2: serial vs parallel chain ────────────────────────────────
    let mats = [&a, &b, &c];
    let (serial_chain_ms, serial_chain) = median_ms(reps, || spmm_chain(&mats));
    let (parallel_chain_ms, parallel_chain) =
        median_ms(reps, || spmm_chain_parallel(&mats, threads));
    assert_bit_identical(&parallel_chain, &serial_chain, "spmm_chain");
    let chain_speedup = serial_chain_ms / parallel_chain_ms.max(1e-9);

    // ── phase 3: per-anchor rows vs one block propagation ────────────────
    let anchors: Vec<usize> = (0..k_anchors).map(|i| (i * 7919) % n).collect();
    let span = [&a, &b];
    let (per_anchor_ms, per_anchor_rows) = median_ms(reps, || {
        anchors
            .iter()
            .map(|&x| spvm_chain(&SparseVec::unit(n, x), &span))
            .collect::<Vec<SparseVec>>()
    });
    let (block_ms, block_rows) = median_ms(reps, || {
        spmm_block_chain(&SparseBlock::from_units(n, &anchors), &span).into_rows()
    });
    assert_eq!(block_rows.len(), per_anchor_rows.len());
    for (i, (got, want)) in block_rows.iter().zip(&per_anchor_rows).enumerate() {
        assert_eq!(got.indices(), want.indices(), "block row {i}: indices");
        for (g, w) in got.values().iter().zip(want.values()) {
            assert_eq!(g.to_bits(), w.to_bits(), "block row {i}: value bits");
        }
    }
    let block_speedup = per_anchor_ms / block_ms.max(1e-9);

    let mut report = hin_bench::JsonReport::new();
    report.set("smoke", smoke);
    report.stamp_env(None);
    report.set("pool_threads", threads);
    report.set("n", n);
    report.set("m", m);
    report.set("nnz_a", a.nnz());
    report.set("nnz_b", b.nnz());
    report.set("reps", reps);
    report.set("serial_spgemm_ms", format!("{serial_spgemm_ms:.3}"));
    report.set("parallel_spgemm_ms", format!("{parallel_spgemm_ms:.3}"));
    report.set("spgemm_speedup", format!("{spgemm_speedup:.2}"));
    report.set("serial_chain_ms", format!("{serial_chain_ms:.3}"));
    report.set("parallel_chain_ms", format!("{parallel_chain_ms:.3}"));
    report.set("chain_speedup", format!("{chain_speedup:.2}"));
    report.set("k_anchors", k_anchors);
    report.set("per_anchor_ms", format!("{per_anchor_ms:.3}"));
    report.set("block_ms", format!("{block_ms:.3}"));
    report.set("block_speedup", format!("{block_speedup:.2}"));
    report.print_and_write("BENCH_parallel.json");

    // ── acceptance gates ─────────────────────────────────────────────────
    // Scaling needs hardware that can actually run the workers in
    // parallel; on one core the run still verifies bit-identity and
    // records the numbers.
    if cores >= 2 {
        assert!(
            spgemm_speedup >= 1.5,
            "parallel spgemm must be ≥ 1.5× serial on {cores} cores \
             (serial {serial_spgemm_ms:.3} ms vs parallel \
             {parallel_spgemm_ms:.3} ms = {spgemm_speedup:.2}×)"
        );
        assert!(
            chain_speedup >= 1.5,
            "parallel spmm_chain must be ≥ 1.5× serial on {cores} cores \
             (serial {serial_chain_ms:.3} ms vs parallel \
             {parallel_chain_ms:.3} ms = {chain_speedup:.2}×)"
        );
    } else {
        eprintln!(
            "note: {cores} core(s) available — parallel scaling assertions \
             skipped, timings recorded for trend tracking"
        );
    }
    assert!(
        block_speedup >= 1.3,
        "block batching {k_anchors} anchors must be ≥ 1.3× the per-anchor \
         loop even on one core (per-anchor {per_anchor_ms:.3} ms vs block \
         {block_ms:.3} ms = {block_speedup:.2}×)"
    );
}
