//! E7 — NetClus accuracy and rankings (KDD'09 Tables 2–3 analogue).
//!
//! Regenerates: NMI of NetClus (authority vs simple ranking) against the
//! PLSA-flavoured text baseline and RankClus on the venue×author pair view;
//! plus the λ-smoothing ablation and per-cluster rank lists.
//!
//! Run with: `cargo run --release -p hin-bench --bin exp_netclus`

use hin_bench::{fmt_ms, markdown_table, mean_std, term_kmeans_baseline};
use hin_clustering::nmi;
use hin_netclus::{netclus, NetClusConfig, RankingMethod};
use hin_rankclus::{rankclus, RankClusConfig};
use hin_synth::DblpConfig;

fn main() {
    const RUNS: u64 = 5;
    println!("## E7a — paper clustering NMI on 4-area synthetic DBLP (5 runs)\n");
    let mut method_scores: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for run in 0..RUNS {
        let data = DblpConfig {
            n_areas: 4,
            n_papers: 1_500,
            authors_per_area: 80,
            noise: 0.07,
            area_mixture_alpha: 0.06,
            seed: 500 + run,
            ..Default::default()
        }
        .generate();
        let star = data.star();

        let auth = netclus(
            &star,
            &NetClusConfig {
                k: 4,
                seed: run,
                ..Default::default()
            },
        );
        method_scores[0].push(nmi(&auth.assignments, &data.paper_area));

        let simple = netclus(
            &star,
            &NetClusConfig {
                k: 4,
                ranking: RankingMethod::Simple,
                seed: run,
                ..Default::default()
            },
        );
        method_scores[1].push(nmi(&simple.assignments, &data.paper_area));

        let pt = data.hin.adjacency(data.paper, data.term).expect("terms");
        let plsa = term_kmeans_baseline(pt, 4, run);
        method_scores[2].push(nmi(&plsa, &data.paper_area));

        // RankClus clusters venues; papers inherit their venue's cluster
        let rc = rankclus(
            &data.venue_author_binet(),
            &RankClusConfig {
                k: 4,
                seed: run,
                ..Default::default()
            },
        );
        let pv = data.hin.adjacency(data.paper, data.venue).expect("venues");
        let inherited: Vec<usize> = (0..data.paper_area.len())
            .map(|p| rc.assignments[pv.row_indices(p)[0] as usize])
            .collect();
        method_scores[3].push(nmi(&inherited, &data.paper_area));
    }
    let names = [
        "NetClus (authority)",
        "NetClus (simple)",
        "term k-means (PLSA-like)",
        "RankClus via venues",
    ];
    let rows: Vec<Vec<String>> = names
        .iter()
        .zip(&method_scores)
        .map(|(n, s)| {
            let (m, sd) = mean_std(s);
            vec![n.to_string(), fmt_ms(m, sd)]
        })
        .collect();
    markdown_table(&["method", "NMI"], &rows);

    println!("\n## E7b — smoothing ablation (λ sweep, single seed)\n");
    let data = DblpConfig {
        n_areas: 4,
        n_papers: 1_500,
        seed: 42,
        ..Default::default()
    }
    .generate();
    let star = data.star();
    let mut rows = Vec::new();
    for &lambda in &[0.0, 0.1, 0.2, 0.4, 0.7, 0.95] {
        let r = netclus(
            &star,
            &NetClusConfig {
                k: 4,
                lambda,
                seed: 1,
                ..Default::default()
            },
        );
        rows.push(vec![
            format!("{lambda:.2}"),
            format!("{:.3}", nmi(&r.assignments, &data.paper_area)),
            r.iterations.to_string(),
        ]);
    }
    markdown_table(&["lambda", "NMI", "iterations"], &rows);
    println!(
        "\nexpected shape: NetClus-authority ≥ NetClus-simple > text-only \
         baseline; moderate smoothing (λ≈0.1–0.4) helps, λ→1 destroys the \
         signal (every cluster sees the global distribution)."
    );
}
