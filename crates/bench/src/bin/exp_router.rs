//! Router experiment: multi-dataset serving under cache thrash and queue
//! overload, measuring what the PR-3 serving refactor is for —
//!
//! * **correctness**: a multi-dataset router run is byte-identical to each
//!   dataset's own single-threaded reference engine;
//! * **work deduplication**: with a bounded cache forcing evictions and M
//!   client threads requesting overlapping spans, concurrent misses on one
//!   key coalesce (coalesced-wait count > 0) and duplicate concurrent
//!   computations of the same key stay at exactly 0;
//! * **admission control**: with the queue depth capped, a flood sheds
//!   requests with `QueryError::Overloaded` instead of growing memory,
//!   and everything admitted still answers correctly.
//!
//! Emits a single JSON object (also written to `BENCH_router.json` at the
//! repo root) so the router perf trajectory is recorded from the first PR
//! that has a router.
//!
//! Run with: `cargo run --release -p hin-bench --bin exp_router`
//! CI smoke: `cargo run --release -p hin-bench --bin exp_router -- --smoke`

use std::sync::{Arc, Barrier};
use std::time::Instant;

use hin_core::Hin;
use hin_query::{CacheConfig, Engine, ExecPolicy, QueryError};
use hin_serve::{Router, RouterConfig, ServeConfig};
use hin_synth::DblpConfig;

fn world(seed: u64, n_papers: usize) -> Arc<Hin> {
    Arc::new(
        DblpConfig {
            n_areas: 3,
            venues_per_area: 4,
            authors_per_area: 40,
            n_papers,
            noise: 0.05,
            seed,
            ..Default::default()
        }
        .generate()
        .hin,
    )
}

/// Expensive overlapping spans: long symmetric paths whose halves are the
/// shared sub-products that eviction and dedup fight over.
fn thrash_queries(anchors: usize) -> Vec<String> {
    let mut queries = Vec::new();
    for a in 0..anchors {
        let anchor = format!("author_a{}_{}", a % 3, a);
        queries.push(format!(
            "pathsim author-paper-venue-paper-author from {anchor}"
        ));
        queries.push(format!(
            "pathsim author-paper-term-paper-author from {anchor}"
        ));
        queries.push(format!(
            "topk 8 author-paper-venue-paper-author from {anchor}"
        ));
    }
    queries
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_papers, anchors, client_threads, flood_per_client) = if smoke {
        (500, 6, 4, 80)
    } else {
        (1_500, 12, 6, 200)
    };
    let datasets: Vec<(String, Arc<Hin>)> = vec![
        ("dblp-a".to_string(), world(11, n_papers)),
        ("dblp-b".to_string(), world(29, n_papers)),
    ];
    let queries = thrash_queries(anchors);

    // per-dataset single-threaded unbounded references
    let references: Vec<Vec<_>> = datasets
        .iter()
        .map(|(_, hin)| {
            let engine = Engine::from_arc(Arc::clone(hin));
            queries.iter().map(|q| engine.execute(q)).collect()
        })
        .collect();

    // ── phase 1: dedup + correctness under thrash ────────────────────────
    // a budget far below the working set: the planner's cached spans are
    // evicted between plan and execute, and concurrent misses pile onto
    // the same keys — the thundering-herd shape the in-flight table kills
    let thrash_budget = 48 * 1024;
    let router = Arc::new(Router::new(RouterConfig {
        stripes: 2,
        serve: ServeConfig {
            workers: 4,
            batch_max: 16,
            queue_depth: None,
            cache: CacheConfig {
                shards: 4,
                byte_budget: Some(thrash_budget),
            },
            // this phase gates the materialization path's in-flight dedup
            // (coalesced > 0, dup == 0); the anchored fast path would
            // route around the very misses being measured — exp_anchored
            // covers the lazy side
            exec: ExecPolicy::eager(),
            ..ServeConfig::default()
        },
    }));
    for (key, hin) in &datasets {
        assert!(router.register(key.clone(), Arc::clone(hin)));
    }

    let rounds = 2usize;
    let barrier = Arc::new(Barrier::new(client_threads));
    let t = Instant::now();
    let clients: Vec<_> = (0..client_threads)
        .map(|_| {
            let router = Arc::clone(&router);
            let barrier = Arc::clone(&barrier);
            let queries = queries.clone();
            let keys: Vec<String> = datasets.iter().map(|(k, _)| k.clone()).collect();
            std::thread::spawn(move || {
                let mut results = Vec::new();
                for r in 0..rounds {
                    for (i, _) in queries.iter().enumerate() {
                        // all threads release onto the same (dataset, query)
                        // at once: concurrent overlapping spans by design
                        barrier.wait();
                        let d = (i + r) % keys.len();
                        let result = router.submit(&keys[d], queries[i].clone()).wait();
                        results.push((d, i, result));
                    }
                }
                results
            })
        })
        .collect();
    let mut mismatches = 0usize;
    for c in clients {
        for (d, i, result) in c.join().expect("client thread") {
            if result != references[d][i] {
                mismatches += 1;
            }
        }
    }
    let thrash_ms = t.elapsed().as_secs_f64() * 1e3;
    let served_thrash = (client_threads * rounds * queries.len()) as f64;
    let thrash_qps = served_thrash / (thrash_ms / 1e3);

    let stats = router.stats();
    let fleet = stats.aggregate();
    let coalesced = fleet.cache_coalesced_waits;
    let dup = fleet.cache_dup_computes;
    let evictions = fleet.cache_evictions;
    let misses = fleet.cache_misses;
    // of all the times a worker needed a product it had to wait/compute
    // for, what fraction was satisfied by another worker's in-flight
    // computation instead of a fresh SpMM chain?
    let dedup_hit_rate = coalesced as f64 / (coalesced + misses).max(1) as f64;
    let routed = stats.routed;
    let _ = Arc::try_unwrap(router)
        .map_err(|_| "router still shared")
        .unwrap()
        .shutdown();

    // ── phase 2: admission control under flood ───────────────────────────
    let capped = Router::new(RouterConfig {
        stripes: 2,
        serve: ServeConfig {
            workers: 2,
            batch_max: 4,
            queue_depth: Some(8),
            cache: CacheConfig::bounded(thrash_budget),
            ..ServeConfig::default()
        },
    });
    capped.register("dblp-a", Arc::clone(&datasets[0].1));
    let flood_query = "pathsim author-paper-venue-paper-author from author_a0_0";
    let flood_want = references[0][0].clone();
    let t = Instant::now();
    let flooders: Vec<_> = (0..client_threads)
        .map(|_| {
            let handle = capped.handle("dblp-a").expect("registered");
            let want = flood_want.clone();
            std::thread::spawn(move || {
                let tickets: Vec<_> = (0..flood_per_client)
                    .map(|_| handle.submit(flood_query))
                    .collect();
                let (mut ok, mut shed) = (0u64, 0u64);
                for ticket in tickets {
                    match ticket.wait() {
                        Ok(out) => {
                            assert_eq!(Ok(out), want, "admitted result diverged");
                            ok += 1;
                        }
                        Err(QueryError::Overloaded) => shed += 1,
                        Err(e) => panic!("unexpected flood error: {e}"),
                    }
                }
                (ok, shed)
            })
        })
        .collect();
    let (mut flood_ok, mut flood_shed) = (0u64, 0u64);
    for f in flooders {
        let (o, s) = f.join().expect("flooder thread");
        flood_ok += o;
        flood_shed += s;
    }
    let flood_ms = t.elapsed().as_secs_f64() * 1e3;
    let flood_total = (client_threads * flood_per_client) as u64;
    let shed_rate = flood_shed as f64 / flood_total as f64;
    let capped_stats = capped.shutdown();
    let capped_fleet = capped_stats.aggregate();

    let mut report = hin_bench::JsonReport::new();
    report.set("smoke", smoke);
    report.stamp_env(Some(thrash_budget));
    report.set("datasets", datasets.len());
    report.set("client_threads", client_threads);
    report.set("thrash_queries", queries.len());
    report.set("thrash_cache_budget_bytes", thrash_budget);
    report.set("thrash_ms", format!("{thrash_ms:.3}"));
    report.set("thrash_qps", format!("{thrash_qps:.1}"));
    report.set("result_mismatches", mismatches);
    report.set("routed", routed);
    report.set("cache_misses", misses);
    report.set("cache_evictions", evictions);
    report.set("dedup_coalesced_waits", coalesced);
    report.set("dedup_hit_rate", format!("{dedup_hit_rate:.4}"));
    report.set("dup_concurrent_computes", dup);
    report.set("flood_total", flood_total);
    report.set("flood_queue_depth_cap", 8);
    report.set("flood_served", flood_ok);
    report.set("flood_shed", flood_shed);
    report.set("flood_shed_rate", format!("{shed_rate:.4}"));
    report.set("flood_ms", format!("{flood_ms:.3}"));
    report.print_and_write("BENCH_router.json");

    // ── acceptance gates ─────────────────────────────────────────────────
    assert_eq!(
        mismatches, 0,
        "multi-dataset router results must be byte-identical to the \
         per-dataset single-threaded references"
    );
    assert!(
        evictions > 0,
        "a {thrash_budget}-byte budget must evict on this workload"
    );
    assert!(
        coalesced > 0,
        "{client_threads} threads × overlapping spans under thrash must \
         produce coalesced waits"
    );
    assert_eq!(
        dup, 0,
        "duplicate concurrent computations of one key must be exactly zero"
    );
    assert!(
        flood_shed > 0,
        "a {flood_total}-query flood over a depth cap of 8 must shed"
    );
    assert_eq!(capped_fleet.served, flood_ok);
    assert_eq!(capped_fleet.shed, flood_shed);
    assert_eq!(flood_ok + flood_shed, flood_total);
}
