//! E6 — RankClus case study (EDBT'09 Tables 1–3 analogue): top venues and
//! authors per discovered cluster, with conditional rank scores.
//!
//! Run with: `cargo run --release -p hin-bench --bin exp_rankclus_case`

use hin_bench::markdown_table;
use hin_clustering::accuracy_hungarian;
use hin_rankclus::{rankclus, RankClusConfig};
use hin_ranking::top_k;
use hin_synth::DblpConfig;

fn main() {
    let data = DblpConfig {
        n_areas: 4,
        venues_per_area: 5,
        authors_per_area: 100,
        n_papers: 3_000,
        noise: 0.06,
        seed: 2009,
        ..Default::default()
    }
    .generate();
    let net = data.venue_author_binet();
    let r = rankclus(
        &net,
        &RankClusConfig {
            k: 4,
            seed: 11,
            ..Default::default()
        },
    );

    println!(
        "## E6 — per-cluster conditional ranking (venue accuracy {:.3}, {} iters, converged: {})\n",
        accuracy_hungarian(&r.assignments, &data.venue_area),
        r.iterations,
        r.converged,
    );

    for c in 0..4 {
        println!("### cluster {c} (prior {:.2})\n", r.cluster_prior[c]);
        let venues = top_k(&r.target_rank[c], 5);
        let authors = top_k(&r.attr_rank[c], 10);
        let rows: Vec<Vec<String>> = (0..10)
            .map(|i| {
                let (vname, vscore) = if i < venues.len() {
                    (
                        net.x_names[venues[i]].clone(),
                        format!("{:.4}", r.target_rank[c][venues[i]]),
                    )
                } else {
                    (String::new(), String::new())
                };
                vec![
                    (i + 1).to_string(),
                    vname,
                    vscore,
                    net.y_names[authors[i]].clone(),
                    format!("{:.4}", r.attr_rank[c][authors[i]]),
                ]
            })
            .collect();
        markdown_table(
            &["rank", "venue", "venue score", "author", "author score"],
            &rows,
        );
        println!();
    }
    println!(
        "expected shape: each cluster's top venues/authors come from a single \
         planted area (names carry their area: venue_aK_*, author_aK_*), and \
         rank scores decay smoothly within a cluster."
    );
}
