//! Anchored-query experiment: what does the sparse-row fast path buy, and
//! where does heat-based promotion cross back to the cache?
//!
//! Three phases over a non-trivial synthetic DBLP world:
//!
//! 1. **Cold anchored latency, lazy vs full** — fresh engines answer one
//!    anchored PathSim query either by row propagation (lazy) or by
//!    materializing the commuting chain (eager). The acceptance gate is
//!    lazy ≥ 5× cheaper at the median.
//! 2. **Promotion crossover** — one engine with the default policy serves
//!    the same span repeatedly: the first queries ride the fast path, the
//!    `promote_after`-th materializes the span through the deduplicated
//!    cache, and every later query is a plain cache hit — the pre-fast-path
//!    warm path, byte-identically.
//! 3. **Concurrent serving** — a worker pool hammers overlapping anchored
//!    queries through a `Server`; promotions must coalesce through the
//!    in-flight table (`dup_computes == 0` stays the law).
//!
//! Emits a single JSON object (also written to `BENCH_anchored.json` at the
//! repo root) so the anchored-latency trajectory is recorded.
//!
//! Run with: `cargo run --release -p hin-bench --bin exp_anchored`
//! CI smoke: `cargo run --release -p hin-bench --bin exp_anchored -- --smoke`

use std::sync::Arc;
use std::time::Instant;

use hin_core::Hin;
use hin_query::{CacheConfig, Engine, ExecPolicy};
use hin_serve::{ServeConfig, Server};
use hin_synth::DblpConfig;

/// Median of `reps` timings of `run` against a fresh engine each time —
/// cold-start latency, robust to a noisy shared runner.
fn median_cold_ms(reps: usize, mut make: impl FnMut() -> Engine, query: &str) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let engine = make();
            let t = Instant::now();
            engine.execute(query).expect("anchored query");
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_papers, cold_reps) = if smoke { (800, 5) } else { (2_500, 9) };

    let data = DblpConfig {
        n_areas: 4,
        authors_per_area: 60,
        n_papers,
        noise: 0.05,
        seed: 17,
        ..Default::default()
    }
    .generate();
    let hin: Arc<Hin> = Arc::new(data.hin);
    let q = "pathsim author-paper-venue-paper-author from author_a0_0";

    // ── phase 1: cold anchored latency, lazy vs full ─────────────────────
    let lazy_cold_ms = median_cold_ms(
        cold_reps,
        || {
            Engine::with_config(
                Arc::clone(&hin),
                CacheConfig::default(),
                // promotion out of reach: measure pure row propagation
                ExecPolicy::promote_after(u32::MAX),
            )
        },
        q,
    );
    let full_cold_ms = median_cold_ms(
        cold_reps,
        || {
            Engine::with_config(
                Arc::clone(&hin),
                CacheConfig::default(),
                ExecPolicy::eager(),
            )
        },
        q,
    );
    let cold_speedup = full_cold_ms / lazy_cold_ms.max(1e-9);

    // identical answers on identical data (unit weights ⇒ exact arithmetic)
    let reference = Engine::with_config(
        Arc::clone(&hin),
        CacheConfig::default(),
        ExecPolicy::eager(),
    );
    let lazy_probe = Engine::with_config(
        Arc::clone(&hin),
        CacheConfig::default(),
        ExecPolicy::promote_after(u32::MAX),
    );
    let want = reference.execute(q).expect("reference");
    assert_eq!(
        lazy_probe.execute(q).expect("lazy"),
        want,
        "fast-path result must be identical to the materialized one"
    );
    assert_eq!(lazy_probe.anchored_fast_paths(), 1);
    assert_eq!(lazy_probe.cache_misses(), 0, "the fast path caches nothing");

    // ── phase 2: promotion crossover on one hot span ─────────────────────
    let engine = Engine::from_arc(Arc::clone(&hin)); // default: promote_after 3
    let promote_after = engine.policy().promote_after;
    let runs = 10usize;
    let mut per_run_ms = Vec::with_capacity(runs);
    let mut promoted_at = 0usize;
    for run in 1..=runs {
        let t = Instant::now();
        let got = engine.execute(q).expect("promotion-phase query");
        per_run_ms.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(got, want, "run {run} diverged");
        if promoted_at == 0 && engine.promotions() == 1 {
            promoted_at = run;
        }
    }
    assert_eq!(
        promoted_at, promote_after as usize,
        "the promote_after-th query on the span must materialize it"
    );
    assert_eq!(engine.promotions(), 1, "one hot span, one promotion");
    assert_eq!(
        engine.anchored_fast_paths(),
        promote_after as u64 - 1,
        "runs before the crossover ride the fast path"
    );
    let misses_after_promotion = engine.cache_misses();
    assert!(misses_after_promotion > 0, "promotion ran the SpMM chain");
    engine.execute(q).expect("post-promotion query");
    assert_eq!(
        engine.cache_misses(),
        misses_after_promotion,
        "post-promotion queries are pure cache hits"
    );
    // the pre-fast-path warm baseline: an eager engine's repeat latency
    let t = Instant::now();
    reference.execute(q).expect("eager warm repeat");
    let eager_warm_ms = t.elapsed().as_secs_f64() * 1e3;
    let post_promotion_ms = per_run_ms[promoted_at..]
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);

    // ── phase 3: concurrent serving keeps dup_computes at 0 ──────────────
    let server = Server::start(Arc::clone(&hin), ServeConfig::default());
    let mut queries = Vec::new();
    for a in 0..16 {
        // many anchors, few spans: exactly the shape promotion exists for
        queries.push(format!(
            "pathsim author-paper-venue-paper-author from author_a{}_{a}",
            a % 4
        ));
        queries.push(format!(
            "pathcount author-paper-term from author_a{}_{a} limit 10",
            a % 4
        ));
        queries.push(format!(
            "topk 8 author-paper-author from author_a{}_{a}",
            a % 4
        ));
    }
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let handle = server.handle();
            let queries = queries.clone();
            std::thread::spawn(move || {
                let mut ok = 0usize;
                for (i, q) in queries.iter().enumerate() {
                    if i % 4 == c {
                        continue; // offset the clients so submissions overlap
                    }
                    if handle.submit(q.clone()).wait().is_ok() {
                        ok += 1;
                    }
                }
                ok
            })
        })
        .collect();
    let served_ok: usize = clients.into_iter().map(|h| h.join().expect("client")).sum();
    let stats = server.shutdown();

    let mut report = hin_bench::JsonReport::new();
    report.set("smoke", smoke);
    report.stamp_env(None);
    report.set("n_papers", n_papers);
    report.set("cold_reps", cold_reps);
    report.set("lazy_cold_ms", format!("{lazy_cold_ms:.4}"));
    report.set("full_cold_ms", format!("{full_cold_ms:.4}"));
    report.set("cold_speedup", format!("{cold_speedup:.2}"));
    report.set("promote_after", promote_after);
    report.set("promoted_at_query", promoted_at);
    report.set("post_promotion_warm_ms", format!("{post_promotion_ms:.4}"));
    report.set("eager_warm_ms", format!("{eager_warm_ms:.4}"));
    report.set("serve_ok", served_ok);
    report.set("serve_anchored_fast_paths", stats.anchored_fast_paths);
    report.set("serve_promotions", stats.promotions);
    report.set("serve_cache_hits", stats.cache_hits);
    report.set("serve_cache_misses", stats.cache_misses);
    report.set("serve_dup_computes", stats.cache_dup_computes);
    report.print_and_write("BENCH_anchored.json");

    // ── acceptance gates ─────────────────────────────────────────────────
    assert!(
        cold_speedup >= 5.0,
        "cold anchored-query latency in lazy mode must be ≥ 5× lower than \
         full materialization (lazy {lazy_cold_ms:.4} ms vs full \
         {full_cold_ms:.4} ms = {cold_speedup:.2}×)"
    );
    assert!(
        stats.anchored_fast_paths > 0,
        "concurrent anchored traffic must ride the fast path"
    );
    assert!(
        stats.promotions > 0,
        "hot spans under concurrent traffic must promote"
    );
    assert_eq!(
        stats.cache_dup_computes, 0,
        "promotions must coalesce through the in-flight table — \
         dup_computes stays 0"
    );
    assert_eq!(stats.errors, 0, "all serving-phase queries must succeed");
}
