//! Memory-mapped restore experiment: what does demand paging buy at the
//! warm-start boundary?
//!
//! A donor engine runs the serving workload and checkpoints its cache to
//! disk; then the same checkpoint is restored three ways — the v2 read
//! path (one read + checksum + views), the mapped eager path (mmap +
//! checksum, faulting every page up front), and the mapped lazy path
//! (mmap + structural validation only, payload pages stay on disk until
//! queried) — and each restore is timed to **first query answered**
//! (TTFQ), best of several reps. The experiment also records the mapped
//! gauge while views are resident, the heap-decode delta across the
//! mapped restore (must be zero: views, not copies), and the RSS deltas
//! of a read-restored vs a mapped-restored engine over the workload.
//!
//! Emits a single JSON object (also written to `BENCH_mmap.json` at the
//! repo root) so the demand-paging trajectory is recorded from the first
//! PR that maps snapshots.
//!
//! Run with: `cargo run --release -p hin-bench --bin exp_mmap`
//! CI smoke: `cargo run --release -p hin-bench --bin exp_mmap -- --smoke`

use std::sync::Arc;
use std::time::Instant;

use hin_query::{CacheConfig, CacheSnapshot, ChecksumMode, Engine, ExecPolicy};
use hin_synth::DblpConfig;

/// Resident set size in kB from `/proc/self/status`, 0 where unavailable.
fn rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmRSS:")
                    .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse::<u64>().ok())
            })
        })
        .unwrap_or(0)
}

/// Restore a snapshot through `restore_fn`, warm an engine with it, and
/// answer the first workload query: `(restore_ms, ttfq_ms, engine)`.
fn time_to_first_query(
    hin: &Arc<hin_core::Hin>,
    first_query: &str,
    restore_fn: impl FnOnce() -> CacheSnapshot,
) -> (f64, f64, Engine) {
    let t0 = Instant::now();
    let snap = restore_fn();
    let engine = Engine::with_config(
        Arc::clone(hin),
        CacheConfig::default(),
        ExecPolicy::default(),
    );
    let report = engine.restore(&snap);
    assert_eq!(report.rejected, 0, "same dataset must restore fully");
    let restore_ms = t0.elapsed().as_secs_f64() * 1e3;
    engine.execute(first_query).expect("first query");
    let ttfq_ms = t0.elapsed().as_secs_f64() * 1e3;
    (restore_ms, ttfq_ms, engine)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_papers, anchors) = if smoke { (600, 8) } else { (2_500, 24) };
    const REPS: usize = 7;

    let data = DblpConfig {
        n_areas: 4,
        authors_per_area: 60,
        n_papers,
        noise: 0.05,
        seed: 11,
        ..Default::default()
    }
    .generate();
    let hin = Arc::new(data.hin);
    let queries = hin_bench::serve_workload(anchors);
    let first_query = queries[0].as_str();

    // ── donor: warm a cache, checkpoint it to disk ───────────────────────
    let donor = Engine::with_config(
        Arc::clone(&hin),
        CacheConfig::default(),
        ExecPolicy::eager(),
    );
    for q in &queries {
        donor.execute(q).expect("donor workload query");
    }
    let snapshot = donor.snapshot(None);
    assert!(!snapshot.is_empty(), "the workload must warm the cache");
    let file = std::env::temp_dir().join(format!("exp_mmap_{}.hinsnap", std::process::id()));
    snapshot.write_to_file(&file).expect("write checkpoint");
    let file_bytes = std::fs::metadata(&file).expect("checkpoint file").len();

    // ── TTFQ: read restore vs mapped restore, best of REPS ───────────────
    let decodes_before = hin_linalg::arena::heap_decodes();
    let maps_before = hin_linalg::arena::mapped_restores();
    let mut read_restore_ms = f64::INFINITY;
    let mut read_ttfq_ms = f64::INFINITY;
    let mut eager_restore_ms = f64::INFINITY;
    let mut eager_ttfq_ms = f64::INFINITY;
    let mut lazy_restore_ms = f64::INFINITY;
    let mut lazy_ttfq_ms = f64::INFINITY;
    let mut mapped_bytes_live = 0u64;
    for _ in 0..REPS {
        let (r, t, _) = time_to_first_query(&hin, first_query, || {
            CacheSnapshot::read_from_file(&file).expect("read restore")
        });
        read_restore_ms = read_restore_ms.min(r);
        read_ttfq_ms = read_ttfq_ms.min(t);
        let (r, t, _) = time_to_first_query(&hin, first_query, || {
            CacheSnapshot::read_from_file_mapped(&file, ChecksumMode::Eager)
                .expect("mapped eager restore")
        });
        eager_restore_ms = eager_restore_ms.min(r);
        eager_ttfq_ms = eager_ttfq_ms.min(t);
        let (r, t, engine) = time_to_first_query(&hin, first_query, || {
            CacheSnapshot::read_from_file_mapped(&file, ChecksumMode::Lazy)
                .expect("mapped lazy restore")
        });
        lazy_restore_ms = lazy_restore_ms.min(r);
        lazy_ttfq_ms = lazy_ttfq_ms.min(t);
        // gauge while the mapped engine still holds its views
        mapped_bytes_live = mapped_bytes_live.max(hin_linalg::arena::arena_mapped_bytes());
        drop(engine);
    }
    let heap_decode_delta = hin_linalg::arena::heap_decodes() - decodes_before;
    let mapped_restore_count = hin_linalg::arena::mapped_restores() - maps_before;
    let mapping_engaged = mapped_restore_count > 0;

    // ── RSS while resident: read-restored vs mapped-restored workload ────
    let rss_base = rss_kb();
    let read_engine = {
        let snap = CacheSnapshot::read_from_file(&file).expect("read restore");
        let e = Engine::with_config(
            Arc::clone(&hin),
            CacheConfig::default(),
            ExecPolicy::default(),
        );
        e.restore(&snap);
        e
    };
    for q in &queries {
        read_engine.execute(q).expect("read-engine query");
    }
    let rss_read_delta_kb = rss_kb().saturating_sub(rss_base);
    let rss_mid = rss_kb();
    let mapped_engine = {
        let snap = CacheSnapshot::read_from_file_mapped(&file, ChecksumMode::Lazy)
            .expect("mapped restore");
        let e = Engine::with_config(
            Arc::clone(&hin),
            CacheConfig::default(),
            ExecPolicy::default(),
        );
        e.restore(&snap);
        e
    };
    for q in &queries {
        mapped_engine.execute(q).expect("mapped-engine query");
    }
    let rss_mapped_delta_kb = rss_kb().saturating_sub(rss_mid);

    // ── parity: mapped engine answers the workload byte-identically ──────
    let mut mismatches = 0usize;
    for q in &queries {
        if mapped_engine.execute(q) != read_engine.execute(q) {
            mismatches += 1;
        }
    }
    drop(mapped_engine);
    drop(read_engine);
    let _ = std::fs::remove_file(&file);

    let mut report = hin_bench::JsonReport::new();
    report.set("smoke", smoke);
    report.stamp_env(None);
    report.set("workload_queries", queries.len());
    report.set("result_mismatches", mismatches);
    report.set("snapshot_entries", snapshot.len());
    report.set("snapshot_bytes", snapshot.bytes());
    report.set("snapshot_file_bytes", file_bytes);
    report.set("mapping_engaged", mapping_engaged);
    report.set("mapped_restores", mapped_restore_count);
    report.set("mapped_bytes", mapped_bytes_live);
    report.set("heap_decode_delta", heap_decode_delta);
    report.set("read_restore_ms", format!("{read_restore_ms:.3}"));
    report.set("read_ttfq_ms", format!("{read_ttfq_ms:.3}"));
    report.set("mapped_eager_restore_ms", format!("{eager_restore_ms:.3}"));
    report.set("mapped_eager_ttfq_ms", format!("{eager_ttfq_ms:.3}"));
    report.set("mapped_lazy_restore_ms", format!("{lazy_restore_ms:.3}"));
    report.set("mapped_lazy_ttfq_ms", format!("{lazy_ttfq_ms:.3}"));
    report.set(
        "ttfq_speedup",
        format!("{:.2}", read_ttfq_ms / lazy_ttfq_ms.max(1e-9)),
    );
    report.set("rss_read_delta_kb", rss_read_delta_kb);
    report.set("rss_mapped_delta_kb", rss_mapped_delta_kb);
    report.print_and_write("BENCH_mmap.json");

    // ── acceptance gates ─────────────────────────────────────────────────
    assert_eq!(
        mismatches, 0,
        "mapped-restored results must be byte-identical to read-restored ones"
    );
    // The mapped gates hold wherever the mapping engages (64-bit unix,
    // zero-copy layout); elsewhere the entry point falls back to the read
    // path by design and there is nothing mapped to gate.
    if mapping_engaged && hin_linalg::arena::ZERO_COPY {
        assert!(
            mapped_bytes_live > 0,
            "the mapped gauge must see the resident arena"
        );
        assert_eq!(
            heap_decode_delta, 0,
            "a mapped restore decodes no matrix onto the heap"
        );
        // the tentpole gate: lazy mapped restore reaches first answer no
        // slower than the read restore (it skips the full-file read and
        // the whole-file checksum; the small epsilon absorbs sub-ms timer
        // jitter on loaded runners)
        assert!(
            lazy_ttfq_ms <= read_ttfq_ms + 0.05,
            "mapped TTFQ must not lose to the read restore \
             (mapped {lazy_ttfq_ms:.3} ms vs read {read_ttfq_ms:.3} ms)"
        );
    }
}
