//! E1 — network measurements (tutorial §2(a); Newman'03, Leskovec'05).
//!
//! Regenerates: power-law degree fit, clustering coefficient / average path
//! (small-world), and the densification power law over growth snapshots.
//!
//! Run with: `cargo run --release -p hin-bench --bin exp_netstats`

use hin_bench::markdown_table;
use hin_stats as stats;
use hin_synth::{forest_fire, DblpConfig, GrowthConfig};

fn main() {
    println!("## E1a — degree distribution of the co-author network\n");
    let data = DblpConfig {
        n_papers: 4_000,
        authors_per_area: 250,
        seed: 1,
        ..Default::default()
    }
    .generate();
    let co = data.coauthor_network();
    let fit = stats::fit_power_law(
        &(0..co.nrows()).map(|v| co.row_nnz(v)).collect::<Vec<_>>(),
        30,
    );
    let mut rows = Vec::new();
    if let Some(f) = fit {
        rows.push(vec![
            "co-author degree".to_string(),
            format!("{:.2}", f.alpha),
            f.xmin.to_string(),
            format!("{:.3}", f.ks),
            f.tail_n.to_string(),
        ]);
    }
    let (ff, _) = forest_fire(&GrowthConfig {
        n: 4_000,
        ..Default::default()
    });
    // the forest-fire degree tail is short at p=0.55; a larger minimum tail
    // keeps the KS scan from locking onto a handful of extreme hubs
    if let Some(f) = stats::fit_power_law(
        &(0..ff.nrows()).map(|v| ff.row_nnz(v)).collect::<Vec<_>>(),
        400,
    ) {
        rows.push(vec![
            "forest-fire degree".to_string(),
            format!("{:.2}", f.alpha),
            f.xmin.to_string(),
            format!("{:.3}", f.ks),
            f.tail_n.to_string(),
        ]);
    }
    markdown_table(&["network", "alpha", "xmin", "KS", "tail n"], &rows);

    println!("\n## E1b — small-world diagnostics\n");
    let mut rows = Vec::new();
    for (name, g) in [("co-author", &co), ("forest-fire", &ff)] {
        if let Some(sw) = stats::small_world_sigma(g, 60) {
            rows.push(vec![
                name.to_string(),
                format!("{:.3}", sw.clustering),
                format!("{:.3}", sw.random_clustering),
                format!("{:.2}", sw.avg_path),
                format!("{:.2}", sw.random_path),
                format!("{:.1}", sw.sigma),
            ]);
        }
    }
    markdown_table(&["network", "C", "C_rand", "L", "L_rand", "sigma"], &rows);

    println!("\n## E1c — densification power law (E ∝ N^a)\n");
    let mut rows = Vec::new();
    let snaps = data.snapshot_sizes();
    if let Some(f) = stats::densification_exponent(&snaps) {
        rows.push(vec![
            "DBLP growth (papers+links)".to_string(),
            format!("{:.3}", f.exponent),
            format!("{:.3}", f.r_squared),
        ]);
    }
    let (_, ff_snaps) = forest_fire(&GrowthConfig {
        n: 4_000,
        ..Default::default()
    });
    let pairs: Vec<(usize, usize)> = ff_snaps.iter().map(|s| (s.nodes, s.edges)).collect();
    if let Some(f) = stats::densification_exponent(&pairs) {
        rows.push(vec![
            "forest fire (p=0.55)".to_string(),
            format!("{:.3}", f.exponent),
            format!("{:.3}", f.r_squared),
        ]);
    }
    // a non-densifying control: linear growth
    let linear: Vec<(usize, usize)> = (1..=10).map(|i| (i * 100, i * 300)).collect();
    if let Some(f) = stats::densification_exponent(&linear) {
        rows.push(vec![
            "linear-growth control".to_string(),
            format!("{:.3}", f.exponent),
            format!("{:.3}", f.r_squared),
        ]);
    }
    markdown_table(&["trace", "exponent a", "R²"], &rows);
    println!("\nexpected shape: forest fire a > 1 (densifies); control a = 1.");
}
