//! E10 — classification of heterogeneous networks (tutorial §5; GNetMine
//! accuracy-vs-label-rate figure shape).
//!
//! Regenerates: holdout accuracy of heterogeneous label propagation versus
//! the homogeneous wvRN baseline as the labeled fraction of papers varies.
//!
//! Run with: `cargo run --release -p hin-bench --bin exp_classify`

use hin_bench::{fmt_ms, markdown_table, mean_std};
use hin_classify::{gnetmine, holdout_accuracy, wvrn, GNetMineConfig, Seeds};
use hin_synth::DblpConfig;

fn main() {
    const RUNS: u64 = 5;
    println!("## E10 — paper classification accuracy vs label rate (5 runs)\n");
    let mut rows = Vec::new();
    for &every in &[100usize, 50, 20, 10, 5] {
        let mut het = Vec::new();
        let mut homo = Vec::new();
        for run in 0..RUNS {
            let data = DblpConfig {
                n_areas: 3,
                n_papers: 1_200,
                authors_per_area: 60,
                noise: 0.06,
                area_mixture_alpha: 0.06,
                seed: 700 + run,
                ..Default::default()
            }
            .generate();
            let mut seeds: Vec<Seeds> = (0..data.hin.type_count())
                .map(|t| vec![None; data.hin.node_count(hin_core::TypeId(t))])
                .collect();
            for (p, &area) in data.paper_area.iter().enumerate() {
                // offset by run so different seeds are labeled each run
                if (p + run as usize).is_multiple_of(every) {
                    seeds[data.paper.0][p] = Some(area);
                }
            }
            let g = gnetmine(
                &data.hin,
                &seeds,
                &GNetMineConfig {
                    n_classes: 3,
                    ..Default::default()
                },
            );
            het.push(holdout_accuracy(
                &g.labels[data.paper.0],
                &data.paper_area,
                &seeds[data.paper.0],
            ));

            let pa = data.hin.adjacency(data.paper, data.author).expect("rel");
            let paper_graph = hin_core::projection::project(&pa.transpose());
            let wv = wvrn(&paper_graph, &seeds[data.paper.0], 3, 50);
            homo.push(holdout_accuracy(
                &wv,
                &data.paper_area,
                &seeds[data.paper.0],
            ));
        }
        let (hm, hs) = mean_std(&het);
        let (wm, ws) = mean_std(&homo);
        rows.push(vec![
            format!("{:.1}%", 100.0 / every as f64),
            fmt_ms(hm, hs),
            fmt_ms(wm, ws),
        ]);
    }
    markdown_table(
        &["labeled papers", "GNetMine-style", "wvRN (co-author)"],
        &rows,
    );
    println!(
        "\nexpected shape (per GNetMine): heterogeneous propagation dominates \
         at every label rate, with the largest margin when labels are \
         scarcest (venue and term arms carry signal wvRN cannot see)."
    );
}
