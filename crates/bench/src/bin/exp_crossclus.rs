//! E15 — CrossClus: user-guided multi-relational clustering (DMKD'07;
//! tutorial §4(b)).
//!
//! Regenerates: the guidance-sensitivity result — the *same* relational
//! data clusters differently (and correctly) depending on which guidance
//! feature the user supplies, and pertinent features are discovered
//! automatically while noise features are rejected.
//!
//! Run with: `cargo run --release -p hin-bench --bin exp_crossclus`

use hin_bench::markdown_table;
use hin_clustering::nmi;
use hin_crossclus::{crossclus, CrossClusConfig, Feature};
use hin_synth::DblpConfig;

fn main() {
    let data = DblpConfig {
        n_areas: 3,
        n_papers: 900,
        authors_per_area: 60,
        noise: 0.05,
        area_mixture_alpha: 0.05,
        seed: 61,
        ..Default::default()
    }
    .generate();
    let n = data.paper_area.len();
    let pv = data.hin.adjacency(data.paper, data.venue).expect("rel");
    let pa = data.hin.adjacency(data.paper, data.author).expect("rel");
    let pt = data.hin.adjacency(data.paper, data.term).expect("rel");

    let from_adj = |name: &str, adj: &hin_linalg::Csr| {
        Feature::from_observations(name, n, adj.ncols(), adj.iter())
    };
    let venue_f = from_adj("paper→venue", pv);
    let author_f = from_adj("paper→authors", pa);
    let term_f = from_adj("paper→terms", pt);
    // a pure-noise feature: publication parity (uncorrelated with areas)
    let parity =
        Feature::from_observations("paper→parity", n, 2, (0..n as u32).map(|p| (p, p % 2, 1.0)));
    // year feature: correlated with nothing but time
    let year = Feature::from_observations(
        "paper→year",
        n,
        data.config.years,
        data.paper_year
            .iter()
            .enumerate()
            .map(|(p, &y)| (p as u32, y, 1.0)),
    );

    println!("## E15a — feature pertinence under venue guidance\n");
    let candidates = [
        author_f.clone(),
        term_f.clone(),
        parity.clone(),
        year.clone(),
    ];
    let r = crossclus(
        &venue_f,
        &candidates,
        &CrossClusConfig {
            k: 3,
            min_pertinence: 0.0, // report everything
            seed: 5,
            ..Default::default()
        },
    );
    let rows: Vec<Vec<String>> = r
        .selected
        .iter()
        .map(|(name, w)| vec![name.clone(), format!("{w:.3}")])
        .collect();
    markdown_table(&["feature", "pertinence to venue guidance"], &rows);

    println!("\n## E15b — clustering quality vs guidance choice\n");
    let mut rows = Vec::new();
    for (gname, guidance, truth, tname) in [
        ("venue", &venue_f, &data.paper_area, "planted area"),
        ("year", &year, &data.paper_area, "planted area"),
    ] {
        let r = crossclus(
            guidance,
            &[author_f.clone(), term_f.clone(), parity.clone()],
            &CrossClusConfig {
                k: 3,
                min_pertinence: 0.1,
                seed: 5,
                ..Default::default()
            },
        );
        rows.push(vec![
            gname.to_string(),
            format!("{:.3}", nmi(&r.assignments, truth)),
            tname.to_string(),
            r.selected
                .iter()
                .map(|(f, _)| f.as_str().split('→').nth(1).unwrap_or(f))
                .collect::<Vec<_>>()
                .join(", "),
        ]);
    }
    markdown_table(
        &["guidance", "NMI", "vs ground truth", "selected features"],
        &rows,
    );
    println!(
        "\nexpected shape (per DMKD'07): under venue guidance the author/term \
         features are selected (high pertinence), parity/year are rejected, \
         and clustering recovers the planted areas; under time guidance the \
         semantic features lose pertinence and area NMI collapses — the \
         user's guidance, not the data alone, decides the clustering."
    );
}
