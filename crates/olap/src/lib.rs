//! OLAP on heterogeneous information networks (tutorial §7(c); the
//! iNextCube direction, VLDB'09 demo \[15\]).
//!
//! A [`NetworkCube`] dices the *center* objects of a star network along
//! informational dimensions (year, research area, …). Unlike a classic data
//! cube, the measure inside each cell is a **network** — the sub-network
//! induced by the cell's center objects — so per-cell aggregates are
//! network measures: object counts, link mass, density, and top-k ranked
//! attribute objects. `roll_up` merges a dimension away; `slice` fixes a
//! dimension value.

use std::collections::HashMap;

use hin_core::StarNet;

/// One informational dimension over the center objects.
#[derive(Clone, Debug)]
pub struct Dimension {
    /// Dimension name (e.g. `"year"`).
    pub name: String,
    /// Display name of each dimension value.
    pub values: Vec<String>,
    /// For each center object, the index of its value in `values`.
    pub assignment: Vec<u32>,
}

impl Dimension {
    /// Build a dimension, checking that assignments are in range.
    ///
    /// # Panics
    /// Panics when an assignment indexes beyond `values`.
    pub fn new(name: &str, values: Vec<String>, assignment: Vec<u32>) -> Self {
        assert!(
            assignment.iter().all(|&a| (a as usize) < values.len()),
            "dimension `{name}`: assignment out of range"
        );
        Self {
            name: name.to_string(),
            values,
            assignment,
        }
    }
}

/// A materialized network cube over a star network.
#[derive(Clone, Debug)]
pub struct NetworkCube {
    star: StarNet,
    dims: Vec<Dimension>,
    /// cell coordinates → member center objects
    cells: HashMap<Vec<u32>, Vec<u32>>,
}

/// Read-only view of one cell's induced sub-network.
pub struct CellView<'a> {
    star: &'a StarNet,
    /// Center objects in the cell.
    pub members: &'a [u32],
}

impl NetworkCube {
    /// Materialize the cube at the finest granularity.
    ///
    /// # Panics
    /// Panics when a dimension's assignment length differs from the star's
    /// center count.
    pub fn build(star: StarNet, dims: Vec<Dimension>) -> Self {
        for d in &dims {
            assert_eq!(
                d.assignment.len(),
                star.n_center,
                "dimension `{}` must cover every center object",
                d.name
            );
        }
        let mut cells: HashMap<Vec<u32>, Vec<u32>> = HashMap::new();
        for obj in 0..star.n_center as u32 {
            let coords: Vec<u32> = dims.iter().map(|d| d.assignment[obj as usize]).collect();
            cells.entry(coords).or_default().push(obj);
        }
        Self { star, dims, cells }
    }

    /// The dimensions, in coordinate order.
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dims
    }

    /// Number of non-empty cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Iterate over `(coordinates, members)` of non-empty cells.
    pub fn cells(&self) -> impl Iterator<Item = (&Vec<u32>, CellView<'_>)> {
        self.cells.iter().map(|(k, v)| {
            (
                k,
                CellView {
                    star: &self.star,
                    members: v,
                },
            )
        })
    }

    /// View a cell by coordinates; `None` when empty/absent.
    pub fn cell(&self, coords: &[u32]) -> Option<CellView<'_>> {
        self.cells.get(coords).map(|v| CellView {
            star: &self.star,
            members: v,
        })
    }

    /// Roll up (aggregate away) the dimension at `dim_index`, merging cells
    /// that differ only in that coordinate.
    ///
    /// # Panics
    /// Panics when `dim_index` is out of range.
    pub fn roll_up(&self, dim_index: usize) -> NetworkCube {
        assert!(dim_index < self.dims.len(), "dimension index out of range");
        let mut dims = self.dims.clone();
        dims.remove(dim_index);
        let mut cells: HashMap<Vec<u32>, Vec<u32>> = HashMap::new();
        for (coords, members) in &self.cells {
            let mut c = coords.clone();
            c.remove(dim_index);
            cells.entry(c).or_default().extend_from_slice(members);
        }
        for members in cells.values_mut() {
            members.sort_unstable();
        }
        NetworkCube {
            star: self.star.clone(),
            dims,
            cells,
        }
    }

    /// Slice: keep only cells whose `dim_index` coordinate equals `value`,
    /// then drop that dimension.
    ///
    /// # Panics
    /// Panics when `dim_index` is out of range.
    pub fn slice(&self, dim_index: usize, value: u32) -> NetworkCube {
        assert!(dim_index < self.dims.len(), "dimension index out of range");
        let mut dims = self.dims.clone();
        dims.remove(dim_index);
        let mut cells: HashMap<Vec<u32>, Vec<u32>> = HashMap::new();
        for (coords, members) in &self.cells {
            if coords[dim_index] != value {
                continue;
            }
            let mut c = coords.clone();
            c.remove(dim_index);
            cells.entry(c).or_default().extend_from_slice(members);
        }
        NetworkCube {
            star: self.star.clone(),
            dims,
            cells,
        }
    }

    /// Total center objects across all cells (invariant under roll-up).
    pub fn total_members(&self) -> usize {
        self.cells.values().map(|v| v.len()).sum()
    }
}

impl CellView<'_> {
    /// Number of center objects in the cell.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Total link weight from the cell's center objects into arm `arm`.
    pub fn link_mass(&self, arm: usize) -> f64 {
        self.members
            .iter()
            .map(|&d| self.star.arms[arm].w.row_sum(d as usize))
            .sum()
    }

    /// Distinct attribute objects of `arm` touched by the cell.
    pub fn attribute_coverage(&self, arm: usize) -> usize {
        let mut seen = vec![false; self.star.arms[arm].w.ncols()];
        let mut count = 0usize;
        for &d in self.members {
            for &a in self.star.arms[arm].w.row_indices(d as usize) {
                if !seen[a as usize] {
                    seen[a as usize] = true;
                    count += 1;
                }
            }
        }
        count
    }

    /// Average links per center object into `arm` — the cell's network
    /// density measure.
    pub fn density(&self, arm: usize) -> f64 {
        if self.members.is_empty() {
            0.0
        } else {
            self.link_mass(arm) / self.members.len() as f64
        }
    }

    /// Top-`k` attribute objects of `arm` by within-cell link mass,
    /// returned as `(attribute id, mass)`.
    pub fn top_attributes(&self, arm: usize, k: usize) -> Vec<(u32, f64)> {
        let mut mass = vec![0.0f64; self.star.arms[arm].w.ncols()];
        for &d in self.members {
            let (idx, vals) = self.star.arms[arm].w.row(d as usize);
            for (&a, &w) in idx.iter().zip(vals) {
                mass[a as usize] += w;
            }
        }
        let order = hin_ranking::top_k(&mass, k);
        order
            .into_iter()
            .filter(|&a| mass[a] > 0.0)
            .map(|a| (a as u32, mass[a]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hin_synth::DblpConfig;

    fn cube() -> (NetworkCube, hin_synth::DblpData) {
        let d = DblpConfig {
            n_areas: 3,
            n_papers: 300,
            years: 5,
            seed: 77,
            ..Default::default()
        }
        .generate();
        let star = d.star();
        let area_dim = Dimension::new(
            "area",
            (0..3).map(|a| format!("area{a}")).collect(),
            d.paper_area.iter().map(|&a| a as u32).collect(),
        );
        let year_dim = Dimension::new(
            "year",
            (0..5).map(|y| format!("y{y}")).collect(),
            d.paper_year.clone(),
        );
        (NetworkCube::build(star, vec![area_dim, year_dim]), d)
    }

    #[test]
    fn cells_partition_the_center() {
        let (c, _) = cube();
        assert_eq!(c.total_members(), 300);
        assert!(c.cell_count() <= 15);
        let sum: usize = c.cells().map(|(_, v)| v.size()).sum();
        assert_eq!(sum, 300);
    }

    #[test]
    fn roll_up_merges_and_preserves_mass() {
        let (c, _) = cube();
        let by_area = c.roll_up(1); // aggregate year away
        assert_eq!(by_area.dimensions().len(), 1);
        assert_eq!(by_area.cell_count(), 3);
        assert_eq!(by_area.total_members(), 300);
        // link mass is additive across the rolled dimension
        let venue_arm = 1; // arm order: author, venue, term (relation order)
        let total_fine: f64 = c.cells().map(|(_, v)| v.link_mass(venue_arm)).sum();
        let total_coarse: f64 = by_area.cells().map(|(_, v)| v.link_mass(venue_arm)).sum();
        assert!((total_fine - total_coarse).abs() < 1e-9);
    }

    #[test]
    fn slice_filters() {
        let (c, d) = cube();
        let year2 = c.slice(1, 2);
        let expected = d.paper_year.iter().filter(|&&y| y == 2).count();
        assert_eq!(year2.total_members(), expected);
        assert_eq!(year2.dimensions().len(), 1);
        assert_eq!(year2.dimensions()[0].name, "area");
    }

    #[test]
    fn cell_measures_reflect_planted_structure() {
        let (c, d) = cube();
        let by_area = c.roll_up(1);
        let star = d.star();
        let venue_arm = star.arm_by_name("venue").unwrap();
        for area in 0..3u32 {
            let cell = by_area.cell(&[area]).expect("non-empty area cell");
            assert!(cell.size() > 30);
            assert!(cell.density(venue_arm) > 0.9, "every paper has one venue");
            // top venues of the area cell should be planted in that area
            let top = cell.top_attributes(venue_arm, 3);
            assert!(!top.is_empty());
            for &(v, _) in &top {
                assert_eq!(
                    d.venue_area[v as usize], area as usize,
                    "top venue of area-{area} cell is out of area"
                );
            }
        }
    }

    #[test]
    fn missing_cell_is_none() {
        let (c, _) = cube();
        assert!(c.cell(&[99, 99]).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_dimension_assignment_panics() {
        let _ = Dimension::new("bad", vec!["only".into()], vec![0, 1]);
    }
}
