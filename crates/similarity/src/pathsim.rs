//! PathSim and the competing meta-path measures (Sun et al., reference \[6\]
//! of the tutorial; tutorial §7(b) "top-k similarity search in
//! heterogeneous information networks").
//!
//! Given the commuting matrix `M` of a *symmetric* meta-path,
//! `PathSim(x, y) = 2·M[x,y] / (M[x,x] + M[y,y])` — a peer measure that
//! normalizes away the hub advantage that raw path counts and random-walk
//! measures give to high-visibility objects.

use hin_linalg::Csr;

/// PathSim between two objects under a symmetric meta-path with commuting
/// matrix `m`. Returns 0 when both self-counts are 0.
pub fn pathsim_pair(m: &Csr, x: usize, y: usize) -> f64 {
    let denom = m.get(x, x) + m.get(y, y);
    if denom <= 0.0 {
        0.0
    } else {
        2.0 * m.get(x, y) / denom
    }
}

/// The full PathSim matrix, sparse over the nonzero pattern of `m`.
/// Diagonal entries are 1 whenever the object has any path instance.
///
/// # Panics
/// Panics when `m` is not square.
pub fn pathsim_matrix(m: &Csr) -> Csr {
    assert_eq!(m.nrows(), m.ncols(), "commuting matrix must be square");
    let diag: Vec<f64> = (0..m.nrows()).map(|i| m.get(i, i)).collect();
    Csr::from_triplets(
        m.nrows(),
        m.ncols(),
        m.iter().filter_map(|(r, c, v)| {
            let denom = diag[r as usize] + diag[c as usize];
            (denom > 0.0).then(|| (r, c, 2.0 * v / denom))
        }),
    )
}

/// Top-`k` PathSim neighbors of `x` (excluding `x` itself), descending.
pub fn top_k_pathsim(m: &Csr, x: usize, k: usize) -> Vec<(usize, f64)> {
    rank_row(
        m.row_indices(x)
            .iter()
            .map(|&y| (y as usize, pathsim_pair(m, x, y as usize))),
        x,
        k,
    )
}

/// Top-`k` by raw path count (the PathCount baseline).
pub fn path_count(m: &Csr, x: usize, k: usize) -> Vec<(usize, f64)> {
    let (idx, vals) = m.row(x);
    rank_row(
        idx.iter().map(|&y| y as usize).zip(vals.iter().copied()),
        x,
        k,
    )
}

/// Top-`k` by the random-walk measure: the row-normalized commuting matrix
/// (probability that a path from `x` ends at `y`). Favours hubs — the
/// behaviour PathSim was designed to avoid.
pub fn random_walk_measure(m: &Csr, x: usize, k: usize) -> Vec<(usize, f64)> {
    let row_sum = m.row_sum(x);
    if row_sum <= 0.0 {
        return Vec::new();
    }
    let (idx, vals) = m.row(x);
    rank_row(
        idx.iter()
            .map(|&y| y as usize)
            .zip(vals.iter().map(|v| v / row_sum)),
        x,
        k,
    )
}

fn rank_row(
    scores: impl Iterator<Item = (usize, f64)>,
    exclude: usize,
    k: usize,
) -> Vec<(usize, f64)> {
    let mut out: Vec<(usize, f64)> = scores.filter(|&(y, _)| y != exclude).collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Commuting matrix of APCPA-style path for 3 objects:
    /// object 0: heavy hub (many self-paths), 1 and 2: small peers that
    /// mostly co-occur with each other.
    fn toy() -> Csr {
        Csr::from_triplets(
            3,
            3,
            [
                (0u32, 0u32, 100.0),
                (1, 1, 4.0),
                (2, 2, 4.0),
                (0, 1, 10.0),
                (1, 0, 10.0),
                (1, 2, 4.0),
                (2, 1, 4.0),
            ],
        )
    }

    #[test]
    fn pathsim_prefers_peers_over_hubs() {
        let m = toy();
        // raw count prefers the hub, PathSim prefers the peer
        assert!(m.get(1, 0) > m.get(1, 2));
        let s_hub = pathsim_pair(&m, 1, 0);
        let s_peer = pathsim_pair(&m, 1, 2);
        assert!(
            s_peer > s_hub,
            "peer {s_peer} should beat hub {s_hub} under PathSim"
        );
        assert!((s_peer - 1.0).abs() < 1e-12, "identical peers have sim 1");
    }

    #[test]
    fn matrix_and_pair_agree() {
        let m = toy();
        let s = pathsim_matrix(&m);
        for (r, c, v) in s.iter() {
            assert!((v - pathsim_pair(&m, r as usize, c as usize)).abs() < 1e-12);
        }
        // diagonal is 1 where defined
        assert_eq!(s.get(0, 0), 1.0);
    }

    #[test]
    fn range_and_symmetry() {
        let m = toy();
        let s = pathsim_matrix(&m);
        for (r, c, v) in s.iter() {
            assert!((0.0..=1.0 + 1e-12).contains(&v), "s({r},{c})={v}");
            assert!((v - s.get(c as usize, r as usize)).abs() < 1e-12);
        }
    }

    #[test]
    fn top_k_rankings_differ_by_measure() {
        let m = toy();
        let ps = top_k_pathsim(&m, 1, 2);
        assert_eq!(ps[0].0, 2, "PathSim ranks the peer first");
        let pc = path_count(&m, 1, 2);
        assert_eq!(pc[0].0, 0, "PathCount ranks the hub first");
        let rw = random_walk_measure(&m, 1, 2);
        assert_eq!(rw[0].0, 0, "random walk follows volume");
        assert!((rw[0].1 - 10.0 / 18.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_object() {
        let m = Csr::from_triplets(2, 2, [(0u32, 0u32, 2.0)]);
        assert_eq!(pathsim_pair(&m, 0, 1), 0.0);
        assert!(top_k_pathsim(&m, 1, 5).is_empty());
        assert!(random_walk_measure(&m, 1, 5).is_empty());
    }
}
