//! Personalized-PageRank similarity (tutorial §2(b)iii).
//!
//! The similarity of `y` to `x` is the stationary probability that a random
//! walk restarting at `x` visits `y`. Asymmetric by nature; the symmetric
//! variant averages the two directions.

use hin_linalg::Csr;
use hin_ranking::{personalized_pagerank, PageRankConfig};

/// PPR similarity of every node to the single source `x`.
pub fn ppr_similarity_from(adj: &Csr, x: usize, config: &PageRankConfig) -> Vec<f64> {
    let mut restart = vec![0.0; adj.nrows()];
    restart[x] = 1.0;
    personalized_pagerank(adj, &restart, config).scores
}

/// The full symmetric PPR similarity matrix:
/// `s(x,y) = (ppr_x(y) + ppr_y(x)) / 2`. Runs one PPR per node — intended
/// for the moderate graph sizes of the published comparisons.
pub fn ppr_similarity_matrix(adj: &Csr, config: &PageRankConfig) -> hin_linalg::DMat {
    let n = adj.nrows();
    let mut s = hin_linalg::DMat::zeros(n, n);
    for x in 0..n {
        let scores = ppr_similarity_from(adj, x, config);
        for (y, &v) in scores.iter().enumerate() {
            s.add_to(x, y, v / 2.0);
            s.add_to(y, x, v / 2.0);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(edges: &[(u32, u32)], n: usize) -> Csr {
        let mut t = Vec::new();
        for &(u, v) in edges {
            t.push((u, v, 1.0));
            t.push((v, u, 1.0));
        }
        Csr::from_triplets(n, n, t)
    }

    #[test]
    fn closer_nodes_are_more_similar() {
        // path 0-1-2-3
        let g = sym(&[(0, 1), (1, 2), (2, 3)], 4);
        let s = ppr_similarity_from(&g, 0, &PageRankConfig::default());
        assert!(s[1] > s[2] && s[2] > s[3]);
    }

    #[test]
    fn matrix_is_symmetric() {
        let g = sym(&[(0, 1), (1, 2), (2, 0), (2, 3)], 4);
        let s = ppr_similarity_matrix(&g, &PageRankConfig::default());
        assert!(s.is_symmetric(1e-12));
        // self-similarity dominates
        for x in 0..4 {
            for y in 0..4 {
                if x != y {
                    assert!(s.get(x, x) > s.get(x, y));
                }
            }
        }
    }

    #[test]
    fn community_structure_visible() {
        // two triangles with a bridge
        let g = sym(&[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)], 6);
        let s = ppr_similarity_matrix(&g, &PageRankConfig::default());
        assert!(s.get(0, 1) > s.get(0, 4), "in-community beats cross");
    }
}
