//! Meta-paths over heterogeneous schemas and their commuting matrices.
//!
//! A meta-path `A —R₁— B —R₂— C …` is a path in the *schema* graph; its
//! commuting matrix is the product of the per-relation adjacency matrices
//! and counts the path instances connecting each object pair. PathSim,
//! PathCount and the random-walk measure are all functions of this matrix.

use hin_core::{Hin, HinError, RelationId, TypeId};
use hin_linalg::Csr;

/// One step of a meta-path: a relation traversed forward (src→dst as
/// stored) or backward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathStep {
    /// Traverse the relation in its stored direction.
    Forward(RelationId),
    /// Traverse the relation against its stored direction.
    Backward(RelationId),
}

impl PathStep {
    /// `(source, destination)` types of this step as traversed.
    pub fn endpoints(&self, hin: &Hin) -> (TypeId, TypeId) {
        match *self {
            PathStep::Forward(r) => {
                let rel = hin.relation(r);
                (rel.src, rel.dst)
            }
            PathStep::Backward(r) => {
                let rel = hin.relation(r);
                (rel.dst, rel.src)
            }
        }
    }

    /// The adjacency matrix of this step in its traversal direction.
    pub fn matrix<'a>(&self, hin: &'a Hin) -> &'a Csr {
        match *self {
            PathStep::Forward(r) => &hin.relation(r).fwd,
            PathStep::Backward(r) => &hin.relation(r).bwd,
        }
    }

    /// The same relation traversed the other way.
    pub fn reversed(&self) -> PathStep {
        match *self {
            PathStep::Forward(r) => PathStep::Backward(r),
            PathStep::Backward(r) => PathStep::Forward(r),
        }
    }
}

/// A meta-path: a non-empty sequence of compatible steps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetaPath {
    steps: Vec<PathStep>,
}

impl MetaPath {
    /// Build from explicit steps.
    ///
    /// # Panics
    /// Panics on an empty step list (use [`MetaPath::validate`] for
    /// type-compatibility checking, which needs the network).
    pub fn new(steps: Vec<PathStep>) -> Self {
        assert!(!steps.is_empty(), "meta-path needs at least one step");
        Self { steps }
    }

    /// Resolve a meta-path from a sequence of type *names*,
    /// e.g. `["author", "paper", "venue", "paper", "author"]` (APVPA).
    /// Each consecutive pair must be connected by a relation in the network.
    pub fn from_type_names(hin: &Hin, names: &[&str]) -> Result<Self, HinError> {
        if names.len() < 2 {
            return Err(HinError::SchemaShape(
                "a meta-path needs at least two types".to_string(),
            ));
        }
        let mut steps = Vec::with_capacity(names.len() - 1);
        for w in names.windows(2) {
            let src = hin.type_by_name(w[0])?;
            let dst = hin.type_by_name(w[1])?;
            let (rel, forward) =
                hin.relation_between(src, dst)
                    .ok_or_else(|| HinError::NoRelation {
                        src: w[0].to_string(),
                        dst: w[1].to_string(),
                    })?;
            steps.push(if forward {
                PathStep::Forward(rel)
            } else {
                PathStep::Backward(rel)
            });
        }
        Ok(Self { steps })
    }

    /// Extend a half-path into the symmetric path `P · P⁻¹`
    /// (e.g. APV → APVPA), the shape PathSim requires.
    pub fn symmetric_closure(&self) -> MetaPath {
        let mut steps = self.steps.clone();
        steps.extend(self.steps.iter().rev().map(|s| s.reversed()));
        MetaPath { steps }
    }

    /// The steps.
    pub fn steps(&self) -> &[PathStep] {
        &self.steps
    }

    /// Path length (number of relations traversed).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Meta-paths are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Check type compatibility against a network and return
    /// `(start type, end type)`.
    pub fn validate(&self, hin: &Hin) -> Result<(TypeId, TypeId), HinError> {
        let (start, mut cur) = self.steps[0].endpoints(hin);
        for step in &self.steps[1..] {
            let (s, d) = step.endpoints(hin);
            if s != cur {
                return Err(HinError::SchemaShape(format!(
                    "meta-path step expects source type `{}` but previous step ends at `{}`",
                    hin.type_name(s),
                    hin.type_name(cur)
                )));
            }
            cur = d;
        }
        Ok((start, cur))
    }

    /// `true` when the path is palindromic (step sequence equals its own
    /// reversal), which guarantees a symmetric commuting matrix.
    pub fn is_palindrome(&self) -> bool {
        let n = self.steps.len();
        (0..n / 2).all(|i| self.steps[i] == self.steps[n - 1 - i].reversed())
    }
}

/// Compute the commuting matrix of a meta-path by chained sparse products.
///
/// Entry `(x, y)` counts the (weighted) path instances from `x` (of the
/// start type) to `y` (of the end type).
///
/// The multiplication order is chosen by the matrix-chain planner in
/// [`hin_linalg::chain`] rather than naively left-to-right, so long paths
/// through a small "waist" type avoid materializing near-dense
/// intermediates. `hin_query`'s engine adds a commuting-matrix cache on
/// top of the same planner for repeated and overlapping queries.
pub fn commuting_matrix(hin: &Hin, path: &MetaPath) -> Result<Csr, HinError> {
    path.validate(hin)?;
    let mats: Vec<&Csr> = path.steps().iter().map(|s| s.matrix(hin)).collect();
    Ok(hin_linalg::spmm_chain(&mats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hin_core::HinBuilder;

    /// papers p0{a0,a1}@v0, p1{a1}@v0, p2{a2}@v1
    fn bib() -> Hin {
        let mut b = HinBuilder::new();
        let paper = b.add_type("paper");
        let author = b.add_type("author");
        let venue = b.add_type("venue");
        let pa = b.add_relation("written_by", paper, author);
        let pv = b.add_relation("published_in", paper, venue);
        b.link(pa, "p0", "a0", 1.0).unwrap();
        b.link(pa, "p0", "a1", 1.0).unwrap();
        b.link(pa, "p1", "a1", 1.0).unwrap();
        b.link(pa, "p2", "a2", 1.0).unwrap();
        b.link(pv, "p0", "v0", 1.0).unwrap();
        b.link(pv, "p1", "v0", 1.0).unwrap();
        b.link(pv, "p2", "v1", 1.0).unwrap();
        b.build()
    }

    #[test]
    fn from_names_and_validate() {
        let hin = bib();
        let apa = MetaPath::from_type_names(&hin, &["author", "paper", "author"]).unwrap();
        assert_eq!(apa.len(), 2);
        let (s, e) = apa.validate(&hin).unwrap();
        assert_eq!(hin.type_name(s), "author");
        assert_eq!(hin.type_name(e), "author");
        assert!(apa.is_palindrome());
    }

    #[test]
    fn bad_paths_rejected() {
        let hin = bib();
        assert!(MetaPath::from_type_names(&hin, &["author"]).is_err());
        assert!(MetaPath::from_type_names(&hin, &["author", "venue"]).is_err());
        assert!(MetaPath::from_type_names(&hin, &["author", "nosuch"]).is_err());

        // incompatible hand-built path: author→paper then author→paper again
        let pa = hin.relation_by_name("written_by").unwrap();
        let bad = MetaPath::new(vec![PathStep::Backward(pa), PathStep::Backward(pa)]);
        assert!(bad.validate(&hin).is_err());
    }

    #[test]
    fn apa_counts_coauthorships() {
        let hin = bib();
        let apa = MetaPath::from_type_names(&hin, &["author", "paper", "author"]).unwrap();
        let m = commuting_matrix(&hin, &apa).unwrap();
        // a0 and a1 share exactly p0
        assert_eq!(m.get(0, 1), 1.0);
        // a1's self-paths: p0 and p1 → 2
        assert_eq!(m.get(1, 1), 2.0);
        assert_eq!(m.get(0, 2), 0.0);
        assert!(m.is_symmetric());
    }

    #[test]
    fn apvpa_counts_venue_coappearance() {
        let hin = bib();
        let apvpa =
            MetaPath::from_type_names(&hin, &["author", "paper", "venue", "paper", "author"])
                .unwrap();
        let m = commuting_matrix(&hin, &apvpa).unwrap();
        // a0 (1 paper at v0) vs a1 (2 papers at v0): 1×2 = 2 paths
        assert_eq!(m.get(0, 1), 2.0);
        // a1 self: 2×2 = 4
        assert_eq!(m.get(1, 1), 4.0);
        // different venues → 0
        assert_eq!(m.get(0, 2), 0.0);
    }

    #[test]
    fn symmetric_closure_builds_palindrome() {
        let hin = bib();
        let apv = MetaPath::from_type_names(&hin, &["author", "paper", "venue"]).unwrap();
        assert!(!apv.is_palindrome());
        let apvpa = apv.symmetric_closure();
        assert_eq!(apvpa.len(), 4);
        assert!(apvpa.is_palindrome());
        let direct =
            MetaPath::from_type_names(&hin, &["author", "paper", "venue", "paper", "author"])
                .unwrap();
        assert_eq!(
            commuting_matrix(&hin, &apvpa).unwrap(),
            commuting_matrix(&hin, &direct).unwrap()
        );
    }
}
