//! SimRank (Jeh & Widom, KDD'02): "two objects are similar if they are
//! referenced by similar objects."
//!
//! Both implementations iterate the fixed point
//! `s(a,b) = C/(|I(a)||I(b)|) · Σ_{i∈I(a)} Σ_{j∈I(b)} s(i,j)` with
//! `s(a,a) = 1`, where `I(v)` are in-neighbors. [`simrank_naive`] is the
//! textbook `O(n² d²)` per iteration; [`fn@simrank`] applies the partial-sums
//! memoization (`O(n² d)`) that LinkClus-era work popularized — E13 in the
//! experiment index benchmarks the two against each other.

use hin_linalg::{Csr, DMat};

/// Configuration for the SimRank iterations.
#[derive(Clone, Copy, Debug)]
pub struct SimRankConfig {
    /// Decay constant `C` (0.8 in the original paper).
    pub c: f64,
    /// Iteration cap (5 iterations give ~1% accuracy in practice).
    pub max_iters: usize,
    /// Early-exit threshold on the max elementwise change.
    pub tol: f64,
}

impl Default for SimRankConfig {
    fn default() -> Self {
        Self {
            c: 0.8,
            max_iters: 10,
            tol: 1e-6,
        }
    }
}

/// Result of a SimRank computation.
#[derive(Clone, Debug)]
pub struct SimRankResult {
    /// The pairwise similarity matrix (symmetric, unit diagonal, entries in
    /// `[0, 1]`).
    pub scores: DMat,
    /// Iterations performed.
    pub iterations: usize,
    /// Final max elementwise change.
    pub delta: f64,
}

/// SimRank with the partial-sums optimization.
///
/// For each source `a` the inner sums `P_a(j) = Σ_{i∈I(a)} s(i, j)` are
/// computed once and reused across all partners `b`, replacing the
/// neighbor-pair double loop.
pub fn simrank(adj: &Csr, config: &SimRankConfig) -> SimRankResult {
    let n = adj.nrows();
    let in_neighbors = adj.transpose();
    let mut s = DMat::identity(n);
    let mut iterations = 0;
    let mut delta = f64::MAX;

    let mut partial = vec![0.0f64; n];
    while iterations < config.max_iters && delta > config.tol {
        let mut next = DMat::identity(n);
        delta = 0.0;
        for a in 0..n {
            let ia = in_neighbors.row_indices(a);
            if ia.is_empty() {
                continue;
            }
            // partial[j] = Σ_{i ∈ I(a)} s(i, j)
            partial.fill(0.0);
            for &i in ia {
                let row = s.row(i as usize);
                for (p, v) in partial.iter_mut().zip(row) {
                    *p += v;
                }
            }
            for b in (a + 1)..n {
                let ib = in_neighbors.row_indices(b);
                if ib.is_empty() {
                    continue;
                }
                let sum: f64 = ib.iter().map(|&j| partial[j as usize]).sum();
                let val = config.c * sum / (ia.len() * ib.len()) as f64;
                delta = delta.max((val - s.get(a, b)).abs());
                next.set(a, b, val);
                next.set(b, a, val);
            }
        }
        s = next;
        iterations += 1;
    }
    SimRankResult {
        scores: s,
        iterations,
        delta,
    }
}

/// Naive SimRank: the direct neighbor-pair double sum. Kept as the baseline
/// for the partial-sums speedup benchmark and as an oracle in tests.
pub fn simrank_naive(adj: &Csr, config: &SimRankConfig) -> SimRankResult {
    let n = adj.nrows();
    let in_neighbors = adj.transpose();
    let mut s = DMat::identity(n);
    let mut iterations = 0;
    let mut delta = f64::MAX;
    while iterations < config.max_iters && delta > config.tol {
        let mut next = DMat::identity(n);
        delta = 0.0;
        for a in 0..n {
            let ia = in_neighbors.row_indices(a);
            if ia.is_empty() {
                continue;
            }
            for b in (a + 1)..n {
                let ib = in_neighbors.row_indices(b);
                if ib.is_empty() {
                    continue;
                }
                let mut sum = 0.0;
                for &i in ia {
                    for &j in ib {
                        sum += s.get(i as usize, j as usize);
                    }
                }
                let val = config.c * sum / (ia.len() * ib.len()) as f64;
                delta = delta.max((val - s.get(a, b)).abs());
                next.set(a, b, val);
                next.set(b, a, val);
            }
        }
        s = next;
        iterations += 1;
    }
    SimRankResult {
        scores: s,
        iterations,
        delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(edges: &[(u32, u32)], n: usize) -> Csr {
        let mut t = Vec::new();
        for &(u, v) in edges {
            t.push((u, v, 1.0));
            t.push((v, u, 1.0));
        }
        Csr::from_triplets(n, n, t)
    }

    #[test]
    fn matches_hand_computed_fixed_point() {
        // Path 0-1-2: s(0,2) converges towards C·s(1,1)=C (both have the
        // single in-neighbor 1); after one iteration s(0,2)=0.8.
        let g = sym(&[(0, 1), (1, 2)], 3);
        let r = simrank(
            &g,
            &SimRankConfig {
                max_iters: 1,
                ..Default::default()
            },
        );
        assert!((r.scores.get(0, 2) - 0.8).abs() < 1e-12);
        // s(0,1): neighbors {1} × {0,2}: (s(1,0)+s(1,2))·0.8/2 = 0 at t=0
        assert_eq!(r.scores.get(0, 1), 0.0);
    }

    #[test]
    fn partial_sums_equals_naive() {
        let g = sym(
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (0, 2),
                (1, 4),
                (4, 5),
                (5, 1),
            ],
            6,
        );
        let config = SimRankConfig {
            max_iters: 6,
            tol: 0.0,
            ..Default::default()
        };
        let a = simrank(&g, &config);
        let b = simrank_naive(&g, &config);
        assert!(
            a.scores.max_abs_diff(&b.scores) < 1e-12,
            "optimized and naive SimRank disagree"
        );
    }

    #[test]
    fn invariants_symmetric_bounded_unit_diagonal() {
        let g = sym(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)], 5);
        let r = simrank(&g, &SimRankConfig::default());
        let n = 5;
        for i in 0..n {
            assert_eq!(r.scores.get(i, i), 1.0);
            for j in 0..n {
                let v = r.scores.get(i, j);
                assert!((0.0..=1.0).contains(&v), "s({i},{j}) = {v}");
                assert!((v - r.scores.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn directed_in_neighbors_used() {
        // 0→2 and 1→2: 0,1 have no in-neighbors, so s(0,1)=0 forever,
        // while s(0,1) would be positive in the undirected reading.
        let g = Csr::from_triplets(3, 3, [(0u32, 2u32, 1.0), (1, 2, 1.0)]);
        let r = simrank(&g, &SimRankConfig::default());
        assert_eq!(r.scores.get(0, 1), 0.0);
        // 2's in-neighborhood is {0,1}: s(2,2)=1 by definition
        assert_eq!(r.scores.get(2, 2), 1.0);
    }

    #[test]
    fn structurally_equivalent_nodes_most_similar() {
        // 3 and 4 have identical neighborhoods {0,1} — they should be the
        // most similar non-identical pair.
        let g = sym(&[(3, 0), (3, 1), (4, 0), (4, 1), (0, 2)], 5);
        let r = simrank(&g, &SimRankConfig::default());
        let s34 = r.scores.get(3, 4);
        for i in 0..5 {
            for j in (i + 1)..5 {
                if (i, j) != (3, 4) {
                    assert!(
                        s34 >= r.scores.get(i, j) - 1e-12,
                        "s(3,4)={} < s({i},{j})={}",
                        s34,
                        r.scores.get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn empty_graph() {
        let r = simrank(&Csr::zeros(0, 0), &SimRankConfig::default());
        assert_eq!(r.scores.rows(), 0);
    }
}
