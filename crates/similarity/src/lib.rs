//! Similarity measures on information networks (tutorial §2(b)iii and the
//! top-k similarity search frontier of §7(b)).
//!
//! * [`mod@simrank`] — SimRank (KDD'02), both the naive fixed-point iteration
//!   and the partial-sums optimization, for homogeneous networks,
//! * [`ppr`] — Personalized-PageRank similarity,
//! * [`metapath`] — meta-path machinery over heterogeneous schemas:
//!   commuting matrices built by sparse products,
//! * [`pathsim`] — PathSim peer similarity plus the PathCount and
//!   random-walk measures it is compared against in the original paper.

pub mod metapath;
pub mod pathsim;
pub mod ppr;
pub mod simrank;

pub use metapath::{commuting_matrix, MetaPath, PathStep};
pub use pathsim::{path_count, pathsim_matrix, pathsim_pair, random_walk_measure, top_k_pathsim};
pub use ppr::{ppr_similarity_from, ppr_similarity_matrix};
pub use simrank::{simrank, simrank_naive, SimRankConfig, SimRankResult};
