//! TruthFinder: truth discovery with multiple conflicting information
//! providers on the web (Yin, Han & Yu, TKDE'08; tutorial §3(d)).
//!
//! The source–fact relationship forms a bipartite information network.
//! TruthFinder iterates two mutually recursive definitions over it:
//! a fact is confident when trustworthy sources claim it; a source is
//! trustworthy when its facts are confident. Two refinements distinguish it
//! from naive voting: *implication* between similar facts about the same
//! object (a near-identical claim lends support), and a *dampening*
//! logistic that keeps confidences in (0, 1).

use std::collections::HashMap;

/// One claim: `source` asserts that `object` has `value`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Claim {
    /// Claiming source id.
    pub source: u32,
    /// Object the claim is about.
    pub object: u32,
    /// Claimed value; similarity of values drives the implication term.
    pub value: f64,
}

/// Configuration for [`fn@truthfinder`].
#[derive(Clone, Copy, Debug)]
pub struct TruthFinderConfig {
    /// Initial source trustworthiness t₀ (paper: 0.9).
    pub initial_trust: f64,
    /// Dampening factor γ of the logistic adjustment (paper: 0.3).
    pub gamma: f64,
    /// Weight ρ of the implication term (paper: 0.5).
    pub rho: f64,
    /// Base similarity subtracted when computing implication, so that
    /// dissimilar facts about one object *compete* (negative implication).
    pub base_sim: f64,
    /// Length scale of the value-similarity kernel `exp(−|Δv|/scale)`.
    pub sim_scale: f64,
    /// Convergence threshold on the max trust change.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for TruthFinderConfig {
    fn default() -> Self {
        Self {
            initial_trust: 0.9,
            gamma: 0.3,
            rho: 0.5,
            base_sim: 0.5,
            sim_scale: 1.0,
            tol: 1e-6,
            max_iters: 50,
        }
    }
}

/// Result of a TruthFinder run.
#[derive(Clone, Debug)]
pub struct TruthFinderResult {
    /// Trustworthiness of each source in `(0, 1)`.
    pub source_trust: Vec<f64>,
    /// Confidence of each distinct fact in `(0, 1)`, indexed like
    /// [`TruthFinderResult::facts`].
    pub fact_confidence: Vec<f64>,
    /// The distinct `(object, value)` facts.
    pub facts: Vec<(u32, f64)>,
    /// For each object, the index (into `facts`) of its highest-confidence
    /// fact — the predicted truth. `None` for objects without claims.
    pub predicted: Vec<Option<usize>>,
    /// Iterations performed.
    pub iterations: usize,
}

impl TruthFinderResult {
    /// Predicted true value of `object`, if any source made a claim.
    pub fn predicted_value(&self, object: u32) -> Option<f64> {
        self.predicted
            .get(object as usize)
            .copied()
            .flatten()
            .map(|f| self.facts[f].1)
    }
}

/// Run TruthFinder.
///
/// `n_sources` and `n_objects` bound the id spaces; claims referencing ids
/// beyond them panic.
pub fn truthfinder(
    n_sources: usize,
    n_objects: usize,
    claims: &[Claim],
    config: &TruthFinderConfig,
) -> TruthFinderResult {
    // deduplicate (object, value) into facts; sources voting for the same
    // value support the same fact
    let mut fact_ids: HashMap<(u32, u64), usize> = HashMap::new();
    let mut facts: Vec<(u32, f64)> = Vec::new();
    let mut fact_sources: Vec<Vec<u32>> = Vec::new();
    let mut source_facts: Vec<Vec<usize>> = vec![Vec::new(); n_sources];
    for c in claims {
        assert!(
            (c.source as usize) < n_sources && (c.object as usize) < n_objects,
            "claim ids out of range"
        );
        let key = (c.object, c.value.to_bits());
        let fid = *fact_ids.entry(key).or_insert_with(|| {
            facts.push((c.object, c.value));
            fact_sources.push(Vec::new());
            facts.len() - 1
        });
        fact_sources[fid].push(c.source);
        source_facts[c.source as usize].push(fid);
    }
    let nf = facts.len();

    // facts grouped per object, for the implication term
    let mut object_facts: Vec<Vec<usize>> = vec![Vec::new(); n_objects];
    for (fid, &(o, _)) in facts.iter().enumerate() {
        object_facts[o as usize].push(fid);
    }

    let mut trust = vec![config.initial_trust; n_sources];
    let mut confidence = vec![0.0f64; nf];
    let mut iterations = 0;

    while iterations < config.max_iters {
        // fact confidence scores from source trust
        let tau: Vec<f64> = trust
            .iter()
            .map(|&t| -(1.0 - t.min(1.0 - 1e-12)).ln())
            .collect();
        let mut score: Vec<f64> = (0..nf)
            .map(|f| fact_sources[f].iter().map(|&s| tau[s as usize]).sum())
            .collect();

        // implication between facts about the same object
        let adjusted: Vec<f64> = (0..nf)
            .map(|f| {
                let (obj, v) = facts[f];
                let mut acc = score[f];
                for &g in &object_facts[obj as usize] {
                    if g == f {
                        continue;
                    }
                    let (_, vg) = facts[g];
                    let sim = (-(v - vg).abs() / config.sim_scale).exp();
                    acc += config.rho * score[g] * (sim - config.base_sim);
                }
                acc
            })
            .collect();
        score = adjusted;

        // dampened logistic
        for (c, &s) in confidence.iter_mut().zip(&score) {
            *c = 1.0 / (1.0 + (-config.gamma * s).exp());
        }

        // source trust = mean confidence of its facts
        let mut max_delta = 0.0f64;
        for s in 0..n_sources {
            let fs = &source_facts[s];
            let new_trust = if fs.is_empty() {
                config.initial_trust
            } else {
                fs.iter().map(|&f| confidence[f]).sum::<f64>() / fs.len() as f64
            };
            max_delta = max_delta.max((new_trust - trust[s]).abs());
            trust[s] = new_trust;
        }
        iterations += 1;
        if max_delta <= config.tol {
            break;
        }
    }

    let predicted: Vec<Option<usize>> = object_facts
        .iter()
        .map(|fs| {
            fs.iter().copied().max_by(|&a, &b| {
                confidence[a]
                    .partial_cmp(&confidence[b])
                    .expect("finite confidence")
            })
        })
        .collect();

    TruthFinderResult {
        source_trust: trust,
        fact_confidence: confidence,
        facts,
        predicted,
        iterations,
    }
}

/// Majority-vote baseline: per object, the value claimed by the most
/// sources. Ties break deterministically toward the smallest value.
/// Returns one `Option<value>` per object.
pub fn majority_vote(n_objects: usize, claims: &[Claim]) -> Vec<Option<f64>> {
    let mut counts: Vec<HashMap<u64, (usize, f64)>> = vec![HashMap::new(); n_objects];
    for c in claims {
        let e = counts[c.object as usize]
            .entry(c.value.to_bits())
            .or_insert((0, c.value));
        e.0 += 1;
    }
    counts
        .into_iter()
        .map(|m| {
            m.into_values()
                .max_by(|a, b| {
                    a.0.cmp(&b.0)
                        .then(b.1.partial_cmp(&a.1).expect("finite values"))
                })
                .map(|(_, v)| v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 sources, 2 objects. Sources 0,1 agree on the truth; source 2
    /// disagrees everywhere.
    fn toy_claims() -> Vec<Claim> {
        vec![
            Claim {
                source: 0,
                object: 0,
                value: 1.0,
            },
            Claim {
                source: 1,
                object: 0,
                value: 1.0,
            },
            Claim {
                source: 2,
                object: 0,
                value: 9.0,
            },
            Claim {
                source: 0,
                object: 1,
                value: 2.0,
            },
            Claim {
                source: 1,
                object: 1,
                value: 2.0,
            },
            Claim {
                source: 2,
                object: 1,
                value: 7.0,
            },
        ]
    }

    #[test]
    fn majority_is_recovered() {
        let r = truthfinder(3, 2, &toy_claims(), &TruthFinderConfig::default());
        assert_eq!(r.predicted_value(0), Some(1.0));
        assert_eq!(r.predicted_value(1), Some(2.0));
        // the consistent sources end up more trusted
        assert!(r.source_trust[0] > r.source_trust[2]);
        assert!(r.source_trust[1] > r.source_trust[2]);
    }

    #[test]
    fn confidences_in_unit_interval() {
        let r = truthfinder(3, 2, &toy_claims(), &TruthFinderConfig::default());
        for &c in &r.fact_confidence {
            assert!((0.0..=1.0).contains(&c), "confidence {c}");
        }
        for &t in &r.source_trust {
            assert!((0.0..=1.0).contains(&t), "trust {t}");
        }
    }

    #[test]
    fn learned_trust_breaks_ties() {
        // Sources 0,1 are consistently correct across many objects; sources
        // 2,3 are consistently wrong (and mutually inconsistent). On object
        // 0 the vote is tied 2–2: learned trust must break the tie toward
        // the reliable pair, while the vote baseline (smallest value on
        // ties) picks the wrong 13.0.
        let mut claims = Vec::new();
        for o in 1..20u32 {
            claims.push(Claim {
                source: 0,
                object: o,
                value: o as f64,
            });
            claims.push(Claim {
                source: 1,
                object: o,
                value: o as f64,
            });
            claims.push(Claim {
                source: 2,
                object: o,
                value: 100.0 + o as f64,
            });
            claims.push(Claim {
                source: 3,
                object: o,
                value: 200.0 + o as f64,
            });
        }
        claims.push(Claim {
            source: 0,
            object: 0,
            value: 42.0,
        });
        claims.push(Claim {
            source: 1,
            object: 0,
            value: 42.0,
        });
        claims.push(Claim {
            source: 2,
            object: 0,
            value: 13.0,
        });
        claims.push(Claim {
            source: 3,
            object: 0,
            value: 13.0,
        });
        let r = truthfinder(4, 20, &claims, &TruthFinderConfig::default());
        assert!(
            r.source_trust[0] > r.source_trust[2],
            "consistent source should earn trust: {:?}",
            r.source_trust
        );
        assert_eq!(
            r.predicted_value(0),
            Some(42.0),
            "trust should break the tie"
        );
        let vote = majority_vote(20, &claims);
        assert_eq!(
            vote[0],
            Some(13.0),
            "vote baseline ties toward the wrong value"
        );
    }

    #[test]
    fn implication_flips_three_way_split() {
        // One vote each for 10.0, 10.1 and 50.0. Without implication all
        // facts tie; with it, the mutually supporting 10-camp must beat the
        // isolated 50.
        let claims = vec![
            Claim {
                source: 0,
                object: 0,
                value: 10.0,
            },
            Claim {
                source: 1,
                object: 0,
                value: 10.1,
            },
            Claim {
                source: 2,
                object: 0,
                value: 50.0,
            },
        ];
        let with = truthfinder(3, 1, &claims, &TruthFinderConfig::default());
        let fid_10 = with.facts.iter().position(|&(_, v)| v == 10.0).unwrap();
        let fid_50 = with.facts.iter().position(|&(_, v)| v == 50.0).unwrap();
        assert!(
            with.fact_confidence[fid_10] > with.fact_confidence[fid_50],
            "near-miss support should push 10.0 above 50.0: {:?}",
            with.fact_confidence
        );
        let predicted = with.predicted_value(0).unwrap();
        assert!(
            predicted < 11.0,
            "prediction {predicted} should be in the 10-camp"
        );

        // ablation: with ρ = 0 the three facts are symmetric
        let without = truthfinder(
            3,
            1,
            &claims,
            &TruthFinderConfig {
                rho: 0.0,
                ..Default::default()
            },
        );
        let spread = without
            .fact_confidence
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        assert!(
            spread.1 - spread.0 < 1e-9,
            "without implication the split stays symmetric: {:?}",
            without.fact_confidence
        );
    }

    #[test]
    fn objects_without_claims() {
        let r = truthfinder(
            1,
            3,
            &[Claim {
                source: 0,
                object: 1,
                value: 5.0,
            }],
            &TruthFinderConfig::default(),
        );
        assert_eq!(r.predicted[0], None);
        assert!(r.predicted[1].is_some());
        assert_eq!(r.predicted[2], None);
        assert_eq!(majority_vote(3, &[])[0], None);
    }

    #[test]
    fn empty_input() {
        let r = truthfinder(0, 0, &[], &TruthFinderConfig::default());
        assert!(r.facts.is_empty());
        assert!(r.predicted.is_empty());
    }
}
