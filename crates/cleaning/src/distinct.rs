//! DISTINCT-style object distinction (Yin, Han & Yu, ICDE'07; tutorial
//! §3(c)): partitioning references that share a name into the underlying
//! real-world identities.
//!
//! Each ambiguous reference is described by its *link context* in the
//! network — for an author reference: the paper's co-authors, venue and
//! terms. Similarity between references combines per-context set
//! resemblance (Jaccard); agglomerative average-link clustering groups
//! references, stopping at a similarity threshold (or a known identity
//! count, for evaluation).

use hin_clustering::{agglomerative_average_link, AgglomerativeStop};
use hin_linalg::DMat;

/// The link context of one reference: one id-set per context dimension
/// (e.g. `[coauthors, {venue}, terms]`). Sets must be sorted for the
/// Jaccard merge; [`ReferenceContext::new`] sorts them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReferenceContext {
    sets: Vec<Vec<u32>>,
}

impl ReferenceContext {
    /// Build from unsorted context sets.
    pub fn new(mut sets: Vec<Vec<u32>>) -> Self {
        for s in &mut sets {
            s.sort_unstable();
            s.dedup();
        }
        Self { sets }
    }

    /// Number of context dimensions.
    pub fn dims(&self) -> usize {
        self.sets.len()
    }

    /// The sorted set for dimension `d`.
    pub fn set(&self, d: usize) -> &[u32] {
        &self.sets[d]
    }
}

/// Configuration of the distinction pipeline.
#[derive(Clone, Debug)]
pub struct DistinctConfig {
    /// Relative weight of each context dimension (normalized internally).
    /// The ICDE'07 system learns these; here they are caller-provided and
    /// dimension count must match the references.
    pub weights: Vec<f64>,
    /// Stopping rule for the agglomerative merge.
    pub stop: AgglomerativeStop,
}

impl Default for DistinctConfig {
    fn default() -> Self {
        Self {
            weights: Vec::new(), // empty = uniform
            stop: AgglomerativeStop::Threshold(0.12),
        }
    }
}

fn jaccard(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Pairwise similarity matrix between references: the weighted sum of
/// per-dimension Jaccard resemblances.
///
/// # Panics
/// Panics when references disagree on dimension count, or when weights are
/// non-empty but mismatched.
pub fn reference_similarity(refs: &[ReferenceContext], weights: &[f64]) -> DMat {
    let n = refs.len();
    let dims = refs.first().map_or(0, |r| r.dims());
    assert!(
        refs.iter().all(|r| r.dims() == dims),
        "references must share context dimensions"
    );
    let w: Vec<f64> = if weights.is_empty() {
        vec![1.0 / dims.max(1) as f64; dims]
    } else {
        assert_eq!(weights.len(), dims, "weight/dimension mismatch");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights need positive mass");
        weights.iter().map(|x| x / total).collect()
    };
    let mut sim = DMat::zeros(n, n);
    for i in 0..n {
        sim.set(i, i, 1.0);
        for j in (i + 1)..n {
            let s: f64 = (0..dims)
                .map(|d| w[d] * jaccard(refs[i].set(d), refs[j].set(d)))
                .sum();
            sim.set(i, j, s);
            sim.set(j, i, s);
        }
    }
    sim
}

/// Partition ambiguous references into identities. Returns a dense label
/// per reference.
pub fn distinct(refs: &[ReferenceContext], config: &DistinctConfig) -> Vec<usize> {
    if refs.is_empty() {
        return Vec::new();
    }
    let sim = reference_similarity(refs, &config.weights);
    agglomerative_average_link(&sim, config.stop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hin_clustering::pairwise_f1;

    /// Two identities: refs 0-2 share coauthors {1,2,3} and venue 10;
    /// refs 3-4 share coauthors {7,8} and venue 20.
    fn two_identities() -> Vec<ReferenceContext> {
        vec![
            ReferenceContext::new(vec![vec![1, 2], vec![10]]),
            ReferenceContext::new(vec![vec![2, 3], vec![10]]),
            ReferenceContext::new(vec![vec![1, 3], vec![10]]),
            ReferenceContext::new(vec![vec![7, 8], vec![20]]),
            ReferenceContext::new(vec![vec![7, 8, 9], vec![20]]),
        ]
    }

    #[test]
    fn jaccard_values() {
        assert_eq!(jaccard(&[1, 2, 3], &[2, 3, 4]), 0.5);
        assert_eq!(jaccard(&[1], &[2]), 0.0);
        assert_eq!(jaccard(&[], &[]), 0.0);
        assert_eq!(jaccard(&[5, 6], &[5, 6]), 1.0);
    }

    #[test]
    fn similarity_matrix_structure() {
        let refs = two_identities();
        let s = reference_similarity(&refs, &[]);
        assert!(s.is_symmetric(1e-12));
        assert_eq!(s.get(0, 0), 1.0);
        assert!(s.get(0, 1) > s.get(0, 3), "same identity more similar");
    }

    #[test]
    fn separates_identities_with_k() {
        let refs = two_identities();
        let labels = distinct(
            &refs,
            &DistinctConfig {
                weights: vec![0.5, 0.5],
                stop: AgglomerativeStop::NumClusters(2),
            },
        );
        let truth = vec![0, 0, 0, 1, 1];
        let f1 = pairwise_f1(&labels, &truth).f1;
        assert!((f1 - 1.0).abs() < 1e-12, "F1 {f1}");
    }

    #[test]
    fn separates_identities_with_threshold() {
        let refs = two_identities();
        let labels = distinct(&refs, &DistinctConfig::default());
        let truth = vec![0, 0, 0, 1, 1];
        let f1 = pairwise_f1(&labels, &truth).f1;
        assert!(f1 > 0.9, "threshold mode F1 {f1}");
    }

    #[test]
    fn weights_change_the_outcome() {
        // references agree on venue but disagree on coauthors
        let refs = vec![
            ReferenceContext::new(vec![vec![1], vec![10]]),
            ReferenceContext::new(vec![vec![2], vec![10]]),
        ];
        // venue-only weighting merges them
        let merged = distinct(
            &refs,
            &DistinctConfig {
                weights: vec![0.0, 1.0],
                stop: AgglomerativeStop::Threshold(0.5),
            },
        );
        assert_eq!(merged[0], merged[1]);
        // coauthor-only weighting keeps them apart
        let split = distinct(
            &refs,
            &DistinctConfig {
                weights: vec![1.0, 0.0],
                stop: AgglomerativeStop::Threshold(0.5),
            },
        );
        assert_ne!(split[0], split[1]);
    }

    #[test]
    fn empty_input() {
        assert!(distinct(&[], &DistinctConfig::default()).is_empty());
    }
}
