//! Data cleaning, integration and validation by link analysis (tutorial
//! §3): the "information networks improve data quality" half of the story.
//!
//! * [`mod@truthfinder`] — veracity analysis: which of many conflicting claims
//!   is true, inferred from the source–fact bipartite network
//!   (Yin, Han & Yu, TKDE'08),
//! * [`mod@distinct`] — object distinction: partitioning references that share
//!   a name back into real-world identities using their link context
//!   (Yin, Han & Yu, ICDE'07),
//! * [`mod@reconcile`] — object reconciliation: matching records across two
//!   sources by neighborhood similarity.

pub mod distinct;
pub mod reconcile;
pub mod truthfinder;

pub use distinct::{distinct, reference_similarity, DistinctConfig, ReferenceContext};
pub use reconcile::{reconcile, MatchPair, ReconcileConfig};
pub use truthfinder::{majority_vote, truthfinder, Claim, TruthFinderConfig, TruthFinderResult};
