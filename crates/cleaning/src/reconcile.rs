//! Object reconciliation (tutorial §3(b)): matching records across two
//! sources that describe the same real-world entities, using the overlap of
//! their link neighborhoods.
//!
//! The greedy best-first matcher below is the standard strong baseline:
//! score all cross pairs by neighborhood Jaccard, repeatedly accept the
//! globally best pair above a threshold, remove both sides, continue.

/// One accepted match.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatchPair {
    /// Index into the left record list.
    pub left: usize,
    /// Index into the right record list.
    pub right: usize,
    /// The similarity that produced the match.
    pub score: f64,
}

/// Configuration for [`fn@reconcile`].
#[derive(Clone, Copy, Debug)]
pub struct ReconcileConfig {
    /// Minimum similarity for an acceptable match.
    pub threshold: f64,
}

impl Default for ReconcileConfig {
    fn default() -> Self {
        Self { threshold: 0.3 }
    }
}

fn jaccard(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter as f64 / (a.len() + b.len() - inter) as f64
}

/// Match `left` records to `right` records by sorted-neighbor-set Jaccard.
/// Each record matches at most once; pairs scoring below the threshold stay
/// unmatched. Neighbor id lists must be sorted and deduplicated.
pub fn reconcile(
    left: &[Vec<u32>],
    right: &[Vec<u32>],
    config: &ReconcileConfig,
) -> Vec<MatchPair> {
    let mut candidates: Vec<MatchPair> = Vec::new();
    for (l, ln) in left.iter().enumerate() {
        for (r, rn) in right.iter().enumerate() {
            let score = jaccard(ln, rn);
            if score >= config.threshold {
                candidates.push(MatchPair {
                    left: l,
                    right: r,
                    score,
                });
            }
        }
    }
    candidates.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("finite")
            .then(a.left.cmp(&b.left))
            .then(a.right.cmp(&b.right))
    });
    let mut used_left = vec![false; left.len()];
    let mut used_right = vec![false; right.len()];
    let mut out = Vec::new();
    for c in candidates {
        if !used_left[c.left] && !used_right[c.right] {
            used_left[c.left] = true;
            used_right[c.right] = true;
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_duplicates_match_perfectly() {
        let left = vec![vec![1, 2, 3], vec![7, 8]];
        let right = vec![vec![7, 8], vec![1, 2, 3]];
        let m = reconcile(&left, &right, &ReconcileConfig::default());
        assert_eq!(m.len(), 2);
        let pair0 = m.iter().find(|p| p.left == 0).unwrap();
        assert_eq!(pair0.right, 1);
        assert_eq!(pair0.score, 1.0);
    }

    #[test]
    fn one_to_one_constraint() {
        // both left records resemble the single right record; only the
        // better one may take it
        let left = vec![vec![1, 2, 3], vec![1, 2]];
        let right = vec![vec![1, 2, 3]];
        let m = reconcile(&left, &right, &ReconcileConfig { threshold: 0.1 });
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].left, 0);
    }

    #[test]
    fn threshold_filters_weak_pairs() {
        let left = vec![vec![1, 2, 3, 4, 5]];
        let right = vec![vec![5, 6, 7, 8, 9]];
        assert!(reconcile(&left, &right, &ReconcileConfig { threshold: 0.3 }).is_empty());
        let m = reconcile(&left, &right, &ReconcileConfig { threshold: 0.05 });
        assert_eq!(m.len(), 1);
        assert!((m[0].score - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_prefers_global_best() {
        // l0 matches r0 (0.5) and r1 (1.0); l1 matches r1 (0.5) only.
        // Greedy takes (l0,r1)=1.0 first, leaving (l1,?) with r0 score 0.
        let left = vec![vec![1, 2], vec![3, 4]];
        let right = vec![vec![1, 5], vec![1, 2]];
        let m = reconcile(&left, &right, &ReconcileConfig { threshold: 0.2 });
        assert_eq!(m.len(), 1);
        assert_eq!((m[0].left, m[0].right), (0, 1));
    }

    #[test]
    fn empty_inputs() {
        assert!(reconcile(&[], &[], &ReconcileConfig::default()).is_empty());
        assert!(reconcile(&[vec![1]], &[], &ReconcileConfig::default()).is_empty());
    }
}
