//! Property tests for the linear-algebra kernels.

use proptest::prelude::*;

use hin_linalg::eigen::jacobi_eigen;
use hin_linalg::solve::solve_linear;
use hin_linalg::vector::dot;
use hin_linalg::{Csr, DMat};

fn triplets(n: usize, max: usize) -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    prop::collection::vec((0..n as u32, 0..n as u32, -10.0f64..10.0), 0..max)
}

fn rect_triplets(nr: usize, nc: usize, max: usize) -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    prop::collection::vec((0..nr as u32, 0..nc as u32, -10.0f64..10.0), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_get_matches_triplet_sum(ts in triplets(6, 20)) {
        let m = Csr::from_triplets(6, 6, ts.clone());
        // accumulate expected values
        let mut expect = std::collections::HashMap::new();
        for (r, c, v) in ts {
            *expect.entry((r, c)).or_insert(0.0) += v;
        }
        for ((r, c), v) in expect {
            prop_assert!((m.get(r as usize, c as usize) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn csr_transpose_is_involution(ts in triplets(7, 30)) {
        let m = Csr::from_triplets(7, 7, ts);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matvec_is_linear(ts in triplets(5, 15),
                        x in prop::collection::vec(-5.0f64..5.0, 5),
                        y in prop::collection::vec(-5.0f64..5.0, 5),
                        a in -3.0f64..3.0) {
        let m = Csr::from_triplets(5, 5, ts);
        // M(ax + y) == a·Mx + My
        let axy: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| a * xi + yi).collect();
        let lhs = m.matvec(&axy);
        let mx = m.matvec(&x);
        let my = m.matvec(&y);
        for i in 0..5 {
            prop_assert!((lhs[i] - (a * mx[i] + my[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn matvec_t_equals_transpose_matvec(ts in triplets(6, 25),
                                        x in prop::collection::vec(-5.0f64..5.0, 6)) {
        let m = Csr::from_triplets(6, 6, ts);
        let a = m.matvec_t(&x);
        let b = m.transpose().matvec(&x);
        for i in 0..6 {
            prop_assert!((a[i] - b[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn spgemm_associates_with_dense(ts1 in triplets(5, 12), ts2 in triplets(5, 12)) {
        let a = Csr::from_triplets(5, 5, ts1);
        let b = Csr::from_triplets(5, 5, ts2);
        let sparse = a.spgemm(&b).to_dense();
        let dense = a.to_dense().matmul(&b.to_dense());
        prop_assert!(sparse.max_abs_diff(&dense) < 1e-9);
    }

    #[test]
    fn jacobi_reconstructs_symmetric(vals in prop::collection::vec(-5.0f64..5.0, 10)) {
        // build a 4x4 symmetric matrix from 10 free entries
        let mut m = DMat::zeros(4, 4);
        let mut it = vals.into_iter();
        for r in 0..4 {
            for c in r..4 {
                let v = it.next().expect("10 entries");
                m.set(r, c, v);
                m.set(c, r, v);
            }
        }
        let e = jacobi_eigen(&m, 1e-13, 100);
        // eigenvalue sum = trace
        let sum: f64 = e.values.iter().sum();
        prop_assert!((sum - m.trace()).abs() < 1e-7);
        // eigenvectors orthonormal
        for i in 0..4 {
            for j in 0..4 {
                let d = dot(&e.vectors.col(i), &e.vectors.col(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((d - expect).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn solve_linear_residual(vals in prop::collection::vec(-3.0f64..3.0, 9),
                             b in prop::collection::vec(-3.0f64..3.0, 3)) {
        let mut m = DMat::zeros(3, 3);
        for r in 0..3 {
            for c in 0..3 {
                m.set(r, c, vals[r * 3 + c]);
            }
            m.add_to(r, r, 6.0); // diagonal dominance → nonsingular
        }
        let x = solve_linear(&m, &b).expect("dominant");
        let res = m.matvec(&x);
        for i in 0..3 {
            prop_assert!((res[i] - b[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn codec_round_trip_is_byte_identical(ts in triplets(9, 40)) {
        let m = Csr::from_triplets(9, 9, ts);
        let mut bytes = Vec::new();
        m.to_writer(&mut bytes).expect("vec writes cannot fail");
        assert_eq!(bytes.len(), m.encoded_len());
        let back = Csr::from_reader(&mut bytes.as_slice()).expect("own output decodes");
        prop_assert_eq!(&back, &m);
        // and re-encoding is deterministic: Csr → bytes → Csr → bytes fixed point
        let mut again = Vec::new();
        back.to_writer(&mut again).expect("vec writes cannot fail");
        prop_assert_eq!(again, bytes);
    }

    #[test]
    fn codec_rejects_any_single_byte_corruption_or_truncation(ts in triplets(5, 12),
                                                              cut in 0usize..1000) {
        let m = Csr::from_triplets(5, 5, ts);
        let mut bytes = Vec::new();
        m.to_writer(&mut bytes).expect("vec writes cannot fail");
        // truncation anywhere is a typed error, never a panic
        let cut = cut % bytes.len();
        prop_assert!(Csr::from_reader(&mut &bytes[..cut]).is_err());
        // flipping one byte is caught (magic/version/checksum/validation)
        bytes[cut] = bytes[cut].wrapping_add(1);
        prop_assert!(Csr::from_reader(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn arena_views_are_content_equal_and_kernel_transparent(ts in triplets(8, 30)) {
        use hin_linalg::{ArenaBuf, ArenaEntry};
        use std::sync::Arc;

        let m = Csr::from_triplets(8, 8, ts);
        // hand-build the arena layout: [indptr u64s | data f64 bits | indices u32s]
        let (indptr, indices, data) = m.parts();
        let mut bytes = Vec::new();
        for &p in indptr {
            bytes.extend_from_slice(&(p as u64).to_le_bytes());
        }
        let data_off = bytes.len();
        for &v in data {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let indices_off = bytes.len();
        for &c in indices {
            bytes.extend_from_slice(&c.to_le_bytes());
        }
        let entry = ArenaEntry {
            nrows: 8,
            ncols: 8,
            nnz: m.nnz(),
            indptr_off: 0,
            indices_off,
            data_off,
        };
        let buf = Arc::new(ArenaBuf::from_bytes(&bytes));
        let view = Csr::from_arena(&buf, entry).expect("valid layout mounts");
        prop_assert_eq!(&view, &m, "views compare equal to owned by content");
        // kernels must not see the backing: same product either way
        prop_assert_eq!(view.spgemm(&view.transpose()), m.spgemm(&m.transpose()));

        // hostile mutations of the entry are typed errors, never panics
        for bad in [
            ArenaEntry { indptr_off: 4, ..entry },             // misaligned
            ArenaEntry { nnz: entry.nnz + 1, ..entry },        // arrays overrun
            ArenaEntry { nrows: usize::MAX, ..entry },         // length overflow
            ArenaEntry { data_off: bytes.len(), ..entry },     // out of bounds
            ArenaEntry { indices_off: 0, ..entry },            // aliases indptr: cols unsorted unless empty
        ] {
            if let Ok(v) = Csr::from_arena(&buf, bad) {
                // an accepted alias must still satisfy every CSR invariant
                prop_assert!(v.nnz() == 0 || v.parts().0.len() == v.nrows() + 1);
            }
        }
    }

    #[test]
    fn parallel_spgemm_is_bit_identical_to_serial(ts1 in rect_triplets(9, 7, 40),
                                                  ts2 in rect_triplets(7, 8, 40)) {
        let a = Csr::from_triplets(9, 7, ts1);
        let b = Csr::from_triplets(7, 8, ts2);
        let serial = a.spgemm(&b);
        let (si, sj, sv) = serial.parts();
        for threads in [1usize, 2, 4] {
            let par = a.spgemm_parallel(&b, threads);
            let (pi, pj, pv) = par.parts();
            prop_assert_eq!(pi, si, "indptr differs at {} threads", threads);
            prop_assert_eq!(pj, sj, "indices differ at {} threads", threads);
            for (x, y) in sv.iter().zip(pv) {
                prop_assert_eq!(x.to_bits(), y.to_bits(),
                                "value bits differ at {} threads", threads);
            }
        }
    }

    #[test]
    fn parallel_spmm_chain_is_bit_identical_to_serial(ts1 in rect_triplets(8, 6, 30),
                                                      ts2 in rect_triplets(6, 7, 30),
                                                      ts3 in rect_triplets(7, 5, 30)) {
        use hin_linalg::{spmm_chain, spmm_chain_parallel};
        let a = Csr::from_triplets(8, 6, ts1);
        let b = Csr::from_triplets(6, 7, ts2);
        let c = Csr::from_triplets(7, 5, ts3);
        let mats = [&a, &b, &c];
        let serial = spmm_chain(&mats);
        let (si, sj, sv) = serial.parts();
        for threads in [1usize, 2, 4] {
            let par = spmm_chain_parallel(&mats, threads);
            let (pi, pj, pv) = par.parts();
            prop_assert_eq!(pi, si, "indptr differs at {} threads", threads);
            prop_assert_eq!(pj, sj, "indices differ at {} threads", threads);
            for (x, y) in sv.iter().zip(pv) {
                prop_assert_eq!(x.to_bits(), y.to_bits(),
                                "value bits differ at {} threads", threads);
            }
        }
    }

    #[test]
    fn parallel_block_chain_is_bit_identical_to_serial(ts1 in rect_triplets(8, 6, 30),
                                                       ts2 in rect_triplets(6, 7, 30),
                                                       ts3 in rect_triplets(7, 5, 30),
                                                       anchors in prop::collection::vec(0usize..8, 1..7)) {
        use hin_linalg::{spmm_block_chain, spmm_block_chain_parallel, ParallelConfig, SparseBlock};
        let a = Csr::from_triplets(8, 6, ts1);
        let b = Csr::from_triplets(6, 7, ts2);
        let c = Csr::from_triplets(7, 5, ts3);
        let mats = [&a, &b, &c];
        let block = SparseBlock::from_units(8, &anchors);
        let serial = spmm_block_chain(&block, &mats);
        for threads in [1usize, 2, 4] {
            let par = spmm_block_chain_parallel(&block, &mats, ParallelConfig::with_threads(threads));
            prop_assert_eq!(par.k(), serial.k(), "row count at {} threads", threads);
            for i in 0..serial.k() {
                let (si, sv) = serial.row(i);
                let (pi, pv) = par.row(i);
                prop_assert_eq!(pi, si, "row {} indices at {} threads", i, threads);
                for (x, y) in sv.iter().zip(pv) {
                    prop_assert_eq!(x.to_bits(), y.to_bits(),
                                    "row {} value bits at {} threads", i, threads);
                }
            }
        }
    }

    #[test]
    fn work_stealing_dispatch_is_bit_identical_to_static(ts1 in rect_triplets(9, 7, 40),
                                                         ts2 in rect_triplets(7, 8, 40)) {
        use hin_linalg::pool::{run_blocks, run_blocks_stealing, row_blocks};
        let a = Csr::from_triplets(9, 7, ts1);
        let b = Csr::from_triplets(7, 8, ts2);
        let serial = a.spgemm(&b);
        let (si, sj, sv) = serial.parts();
        // same partition through both dispatchers must stitch identically;
        // then the full kernel under the process-wide toggle (safe shared
        // state: every concurrent test asserts bit-identity either way)
        let row_flops = |r: usize| a.row_indices(r).iter()
            .map(|&k| b.row_nnz(k as usize)).sum::<usize>();
        for threads in [1usize, 2, 4] {
            let blocks = row_blocks(9, threads * hin_linalg::pool::STEAL_CHUNK_FACTOR, row_flops);
            let static_parts = run_blocks(blocks.clone(), |r| (r.start, r.end));
            let stolen_parts = run_blocks_stealing(blocks.clone(), threads, |r| (r.start, r.end));
            prop_assert_eq!(static_parts, stolen_parts, "block order at {} threads", threads);
            hin_linalg::set_work_stealing(true);
            let par = a.spgemm_parallel(&b, threads);
            hin_linalg::clear_work_stealing();
            let (pi, pj, pv) = par.parts();
            prop_assert_eq!(pi, si, "indptr differs at {} threads", threads);
            prop_assert_eq!(pj, sj, "indices differ at {} threads", threads);
            for (x, y) in sv.iter().zip(pv) {
                prop_assert_eq!(x.to_bits(), y.to_bits(),
                                "value bits differ at {} threads", threads);
            }
        }
    }

    #[test]
    fn row_normalized_preserves_sparsity(ts in triplets(6, 20)) {
        let m = Csr::from_triplets(6, 6, ts);
        let n = m.row_normalized();
        prop_assert_eq!(m.nnz(), n.nnz());
        for r in 0..6 {
            prop_assert_eq!(m.row_indices(r), n.row_indices(r));
        }
    }
}
