//! Lanczos iteration for large sparse symmetric eigenproblems.
//!
//! Spectral clustering on graphs beyond the dense-Jacobi comfort zone
//! (n ≳ 1500) needs only a few extremal eigenpairs of the normalized
//! Laplacian. Lanczos with full reorthogonalization builds a small
//! tridiagonal proxy whose Ritz pairs approximate them; the proxy is then
//! solved exactly with the dense Jacobi solver.

use crate::dense::DMat;
use crate::eigen::jacobi_eigen;
use crate::vector::{axpy, dot, norm2, normalize_l2};

/// Extremal Ritz pairs returned by [`lanczos_symmetric`].
#[derive(Clone, Debug)]
pub struct RitzPairs {
    /// Approximate eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Approximate eigenvectors (unit norm), one per value, each of length
    /// `n`.
    pub vectors: Vec<Vec<f64>>,
}

/// Run `steps` Lanczos iterations of the symmetric operator `op` (given as a
/// matrix-free `y = A x` closure over vectors of length `n`) and return the
/// `k` smallest Ritz pairs.
///
/// Full reorthogonalization is used: it costs `O(steps² · n)` but removes the
/// ghost-eigenvalue pathology, which matters because spectral clustering
/// needs *distinct* small eigenvectors.
///
/// `seed` makes the start vector deterministic.
pub fn lanczos_symmetric(
    n: usize,
    steps: usize,
    k: usize,
    seed: u64,
    mut op: impl FnMut(&[f64]) -> Vec<f64>,
) -> RitzPairs {
    assert!(n > 0, "lanczos_symmetric: empty operator");
    let m = steps.min(n).max(1);

    // deterministic start vector from a splitmix64 stream
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut q = vec![0.0f64; n];
    for qi in q.iter_mut() {
        *qi = (next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
    normalize_l2(&mut q);

    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut alphas: Vec<f64> = Vec::with_capacity(m);
    let mut betas: Vec<f64> = Vec::with_capacity(m.saturating_sub(1));

    basis.push(q.clone());
    for j in 0..m {
        let mut w = op(&basis[j]);
        assert_eq!(w.len(), n, "operator changed dimension");
        let alpha = dot(&w, &basis[j]);
        alphas.push(alpha);
        axpy(-alpha, &basis[j], &mut w);
        if j > 0 {
            let beta_prev = betas[j - 1];
            axpy(-beta_prev, &basis[j - 1], &mut w);
        }
        // full reorthogonalization against the entire basis (twice is enough)
        for _ in 0..2 {
            for b in &basis {
                let proj = dot(&w, b);
                axpy(-proj, b, &mut w);
            }
        }
        let beta = norm2(&w);
        if j + 1 == m {
            break;
        }
        if beta < 1e-12 {
            // invariant subspace found: restart with a fresh random direction
            let mut fresh = vec![0.0f64; n];
            for v in fresh.iter_mut() {
                *v = (next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            }
            for b in &basis {
                let proj = dot(&fresh, b);
                axpy(-proj, b, &mut fresh);
            }
            if normalize_l2(&mut fresh) < 1e-12 {
                break; // whole space exhausted
            }
            betas.push(0.0);
            basis.push(fresh);
        } else {
            for v in w.iter_mut() {
                *v /= beta;
            }
            betas.push(beta);
            basis.push(w);
        }
    }

    // dense tridiagonal proxy
    let steps_done = alphas.len();
    let mut t = DMat::zeros(steps_done, steps_done);
    for (i, &a) in alphas.iter().enumerate() {
        t.set(i, i, a);
    }
    for (i, &b) in betas.iter().take(steps_done.saturating_sub(1)).enumerate() {
        t.set(i, i + 1, b);
        t.set(i + 1, i, b);
    }
    let decomp = jacobi_eigen(&t, 1e-13, 100);

    let k = k.min(steps_done);
    let mut values = Vec::with_capacity(k);
    let mut vectors = Vec::with_capacity(k);
    for idx in 0..k {
        values.push(decomp.values[idx]);
        let ritz_coeff = decomp.vectors.col(idx);
        let mut v = vec![0.0f64; n];
        for (j, b) in basis.iter().enumerate().take(steps_done) {
            axpy(ritz_coeff[j], b, &mut v);
        }
        normalize_l2(&mut v);
        vectors.push(v);
    }
    RitzPairs { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;

    #[test]
    fn recovers_diagonal_spectrum() {
        // diag(1, 2, ..., 10): smallest eigenpair is e_1 with λ=1
        let n = 10;
        let diag: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let pairs = lanczos_symmetric(n, n, 3, 7, |x| {
            x.iter().zip(&diag).map(|(xi, d)| xi * d).collect()
        });
        assert!((pairs.values[0] - 1.0).abs() < 1e-8, "{:?}", pairs.values);
        assert!((pairs.values[1] - 2.0).abs() < 1e-8);
        assert!(pairs.vectors[0][0].abs() > 0.99);
    }

    #[test]
    fn matches_jacobi_on_laplacian() {
        // path graph P5 Laplacian; compare smallest 3 eigenvalues to Jacobi
        let edges = [(0u32, 1u32), (1, 2), (2, 3), (3, 4)];
        let mut trips = Vec::new();
        for &(u, v) in &edges {
            trips.push((u, v, -1.0));
            trips.push((v, u, -1.0));
            trips.push((u, u, 1.0));
            trips.push((v, v, 1.0));
        }
        let lap = Csr::from_triplets(5, 5, trips);
        let pairs = lanczos_symmetric(5, 5, 3, 13, |x| lap.matvec(x));
        let exact = jacobi_eigen(&lap.to_dense(), 1e-13, 100);
        for i in 0..3 {
            assert!(
                (pairs.values[i] - exact.values[i]).abs() < 1e-7,
                "λ{i}: lanczos {} vs jacobi {}",
                pairs.values[i],
                exact.values[i]
            );
        }
        // λ0 of a connected graph Laplacian is 0 with constant eigenvector
        assert!(pairs.values[0].abs() < 1e-8);
        let v0 = &pairs.vectors[0];
        let spread = v0.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &x| {
            (lo.min(x.abs()), hi.max(x.abs()))
        });
        assert!(spread.1 - spread.0 < 1e-6, "constant eigenvector expected");
    }

    #[test]
    fn ritz_vectors_are_approximate_eigenvectors() {
        let diag: Vec<f64> = vec![5.0, 1.0, 3.0, 9.0, 2.0];
        let pairs = lanczos_symmetric(5, 5, 2, 21, |x| {
            x.iter().zip(&diag).map(|(xi, d)| xi * d).collect()
        });
        // residual ||A v − λ v|| small
        for (lam, v) in pairs.values.iter().zip(&pairs.vectors) {
            let av: Vec<f64> = v.iter().zip(&diag).map(|(xi, d)| xi * d).collect();
            let res: f64 = av
                .iter()
                .zip(v)
                .map(|(a, b)| (a - lam * b) * (a - lam * b))
                .sum::<f64>()
                .sqrt();
            assert!(res < 1e-7, "residual {res}");
        }
    }
}
