//! Row-major dense matrices.
//!
//! Sized for the dense work the reproduced algorithms actually do: SimRank
//! score matrices (n ≤ a few thousand), spectral embeddings, Jacobi
//! eigendecompositions and small EM statistics. Not a general BLAS.

use std::fmt;

/// A row-major dense `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct DMat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMat {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "DMat::from_vec: data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build from nested row slices.
    ///
    /// # Panics
    /// Panics when rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "DMat::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// In-place element update.
    #[inline]
    pub fn add_to(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] += v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Extract column `c` as an owned vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> DMat {
        let mut t = DMat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Dense matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &DMat) -> DMat {
        assert_eq!(
            self.cols, rhs.rows,
            "DMat::matmul: inner dimensions {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = DMat::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop contiguous in both `rhs` and
        // `out`, which matters at the SimRank matrix sizes we use.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "DMat::matvec: dimension mismatch");
        (0..self.rows)
            .map(|r| crate::vector::dot(self.row(r), x))
            .collect()
    }

    /// Elementwise `self + alpha * rhs`.
    pub fn add_scaled(&self, alpha: f64, rhs: &DMat) -> DMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + alpha * b)
            .collect();
        DMat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Multiply every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute difference between two equal-shaped matrices.
    pub fn max_abs_diff(&self, rhs: &DMat) -> f64 {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        self.data
            .iter()
            .zip(&rhs.data)
            .fold(0.0, |m, (a, b)| m.max((a - b).abs()))
    }

    /// `true` when the matrix equals its transpose within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self.get(r, c) - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Force exact symmetry by averaging with the transpose.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols, "symmetrize requires a square matrix");
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                let avg = 0.5 * (self.get(r, c) + self.get(c, r));
                self.set(r, c, avg);
                self.set(c, r, avg);
            }
        }
    }

    /// Sum of diagonal entries.
    pub fn trace(&self) -> f64 {
        (0..self.rows.min(self.cols)).map(|i| self.get(i, i)).sum()
    }
}

impl fmt::Debug for DMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DMat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!((m.rows(), m.cols()), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let m = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = DMat::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = DMat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = DMat::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, DMat::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = DMat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn symmetry_helpers() {
        let mut m = DMat::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]);
        assert!(!m.is_symmetric(1e-12));
        m.symmetrize();
        assert!(m.is_symmetric(1e-12));
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.trace(), 2.0);
    }

    #[test]
    fn norms_and_arith() {
        let a = DMat::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(a.frobenius(), 5.0);
        let b = a.add_scaled(-1.0, &a);
        assert_eq!(b.frobenius(), 0.0);
        let mut c = a.clone();
        c.scale(2.0);
        assert_eq!(c.get(1, 1), 8.0);
        assert_eq!(a.max_abs_diff(&c), 4.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dimension_mismatch_panics() {
        let a = DMat::zeros(2, 3);
        let b = DMat::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
