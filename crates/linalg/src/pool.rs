//! Scoped worker pool and row-block partitioning for the parallel sparse
//! kernels.
//!
//! Every output row of an SpMM is independent, so the parallel kernels
//! ([`Csr::spgemm_parallel`](crate::csr::Csr::spgemm_parallel),
//! [`crate::chain::spmm_chain_parallel`]) partition output rows into
//! contiguous, work-balanced blocks and hand each block to its own worker
//! with its own [`ScatterScratch`](crate::csr::ScatterScratch). Workers are
//! `std::thread::scope` threads — no external threadpool dependency, no
//! long-lived pool state to manage, and borrowed operands flow into the
//! workers without `Arc` ceremony. Rows inside a block run the *exact*
//! serial per-row kernel, and blocks are stitched back in row order, so the
//! parallel product is bit-identical to the serial one by construction.
//!
//! # Thread-count resolution
//!
//! The effective worker count is resolved in precedence order:
//!
//! 1. an explicit [`set_kernel_threads`] call (how `hin-serve`'s
//!    `ServeConfig` kernel-threads knob plumbs through),
//! 2. the `HIN_KERNEL_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! [`kernel_threads`] reports the resolved value; benchmark reports stamp
//! it so every recorded number names the worker count that produced it.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default kernel worker count.
pub const KERNEL_THREADS_ENV: &str = "HIN_KERNEL_THREADS";

/// Process-wide explicit worker count; `0` = unset (fall through to the
/// environment / hardware default).
static KERNEL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Worker-count configuration for the parallel kernels.
///
/// A thin value type so callers can resolve, clamp and pass thread counts
/// explicitly (the proptests force `{1, 2, 4}` through it regardless of the
/// machine); [`ParallelConfig::default`] resolves the process-wide count
/// the same way [`kernel_threads`] does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    threads: usize,
}

impl ParallelConfig {
    /// Exactly `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Resolve from the environment: `HIN_KERNEL_THREADS` when set to a
    /// positive integer, otherwise [`std::thread::available_parallelism`].
    pub fn from_env() -> Self {
        let threads = std::env::var(KERNEL_THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Self { threads }
    }

    /// The configured worker count (≥ 1).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for ParallelConfig {
    /// The process-wide resolution: explicit [`set_kernel_threads`] >
    /// `HIN_KERNEL_THREADS` > hardware parallelism.
    fn default() -> Self {
        Self {
            threads: kernel_threads(),
        }
    }
}

/// Pin the process-wide kernel worker count (the `ServeConfig` plumbing).
/// `0` clears the override, falling back to environment/hardware
/// resolution.
pub fn set_kernel_threads(threads: usize) {
    KERNEL_THREADS.store(threads, Ordering::Relaxed);
}

/// The worker count the parallel kernels use when the caller doesn't pass
/// one: explicit [`set_kernel_threads`] > `HIN_KERNEL_THREADS` >
/// [`std::thread::available_parallelism`]. Always ≥ 1.
pub fn kernel_threads() -> usize {
    match KERNEL_THREADS.load(Ordering::Relaxed) {
        0 => ParallelConfig::from_env().threads(),
        n => n,
    }
}

/// Partition `0..nrows` into at most `threads` contiguous blocks balanced
/// by `row_weight` (typically per-row multiply-add counts, so nnz-heavy
/// rows don't pile onto one worker). Blocks are non-empty and cover the
/// range in order; fewer than `threads` blocks come back when there are
/// fewer rows (or all the weight fits earlier).
pub fn row_blocks(
    nrows: usize,
    threads: usize,
    mut row_weight: impl FnMut(usize) -> usize,
) -> Vec<Range<usize>> {
    let threads = threads.max(1);
    if nrows == 0 {
        return Vec::new();
    }
    if threads == 1 || nrows == 1 {
        // one block spanning every row — not a 0..nrows index list
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..nrows];
    }
    // Every row weighs at least 1 so empty rows still advance the split
    // points and no block degenerates to zero rows.
    let weights: Vec<u64> = (0..nrows).map(|r| row_weight(r).max(1) as u64).collect();
    let total: u64 = weights.iter().sum();
    let per_block = total.div_ceil(threads as u64).max(1);
    let mut blocks = Vec::with_capacity(threads);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (r, &w) in weights.iter().enumerate() {
        acc += w;
        if acc >= per_block && r + 1 < nrows {
            blocks.push(start..r + 1);
            start = r + 1;
            acc = 0;
        }
    }
    blocks.push(start..nrows);
    blocks
}

/// Run `work` over each block on scoped worker threads, returning per-block
/// results in block order. A single block runs inline on the caller's
/// thread — the serial path spawns nothing.
pub fn run_blocks<T: Send>(
    blocks: Vec<Range<usize>>,
    work: impl Fn(Range<usize>) -> T + Sync,
) -> Vec<T> {
    if blocks.len() <= 1 {
        return blocks.into_iter().map(work).collect();
    }
    let mut slots: Vec<Option<T>> = blocks.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        for (slot, block) in slots.iter_mut().zip(blocks) {
            let work = &work;
            s.spawn(move || {
                *slot = Some(work(block));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("scoped worker filled its slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_resolution_and_clamping() {
        assert_eq!(ParallelConfig::with_threads(0).threads(), 1);
        assert_eq!(ParallelConfig::with_threads(4).threads(), 4);
        assert!(ParallelConfig::from_env().threads() >= 1);
        assert!(kernel_threads() >= 1);
        // explicit override wins, clearing falls back
        set_kernel_threads(7);
        assert_eq!(kernel_threads(), 7);
        assert_eq!(ParallelConfig::default().threads(), 7);
        set_kernel_threads(0);
        assert!(kernel_threads() >= 1);
    }

    #[test]
    fn blocks_cover_contiguously_and_balance_weight() {
        // skewed weights: the heavy head must not drag the whole range
        // into one block
        let w = [100usize, 1, 1, 1, 1, 1, 1, 100];
        let blocks = row_blocks(8, 3, |r| w[r]);
        assert!(!blocks.is_empty() && blocks.len() <= 3);
        assert_eq!(blocks[0].start, 0);
        assert_eq!(blocks.last().unwrap().end, 8);
        for pair in blocks.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "contiguous cover");
            assert!(!pair[0].is_empty());
        }
        // uniform weights split near-evenly
        let even = row_blocks(100, 4, |_| 1);
        assert_eq!(even.len(), 4);
        assert!(even.iter().all(|b| b.len() >= 20));
    }

    #[test]
    fn degenerate_block_shapes() {
        assert!(row_blocks(0, 4, |_| 1).is_empty());
        assert_eq!(row_blocks(1, 4, |_| 1), vec![0..1]);
        assert_eq!(row_blocks(5, 1, |_| 1), vec![0..5]);
        // more threads than rows: at most one block per row
        let blocks = row_blocks(3, 8, |_| 1);
        assert!(blocks.len() <= 3);
        assert_eq!(blocks.last().unwrap().end, 3);
    }

    #[test]
    fn run_blocks_returns_in_block_order() {
        let blocks = row_blocks(64, 4, |_| 1);
        let want: Vec<usize> = blocks.iter().map(|b| b.start).collect();
        let got = run_blocks(blocks, |b| b.start);
        assert_eq!(got, want);
        // the single-block inline path
        #[allow(clippy::single_range_in_vec_init)]
        let one_block = vec![0..9];
        assert_eq!(run_blocks(one_block, |b| b.end), vec![9]);
        assert!(run_blocks(Vec::new(), |b| b.end).is_empty());
    }
}
