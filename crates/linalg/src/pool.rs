//! Scoped worker pool and row-block partitioning for the parallel sparse
//! kernels.
//!
//! Every output row of an SpMM is independent, so the parallel kernels
//! ([`Csr::spgemm_parallel`](crate::csr::Csr::spgemm_parallel),
//! [`crate::chain::spmm_chain_parallel`]) partition output rows into
//! contiguous, work-balanced blocks and hand each block to its own worker
//! with its own [`ScatterScratch`](crate::csr::ScatterScratch). Workers are
//! `std::thread::scope` threads — no external threadpool dependency, no
//! long-lived pool state to manage, and borrowed operands flow into the
//! workers without `Arc` ceremony. Rows inside a block run the *exact*
//! serial per-row kernel, and blocks are stitched back in row order, so the
//! parallel product is bit-identical to the serial one by construction.
//!
//! # Thread-count resolution
//!
//! The effective worker count is resolved in precedence order:
//!
//! 1. an explicit [`set_kernel_threads`] call (how `hin-serve`'s
//!    `ServeConfig` kernel-threads knob plumbs through),
//! 2. the `HIN_KERNEL_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! [`kernel_threads`] reports the resolved value; benchmark reports stamp
//! it so every recorded number names the worker count that produced it.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the default kernel worker count.
pub const KERNEL_THREADS_ENV: &str = "HIN_KERNEL_THREADS";

/// Environment variable enabling work-stealing block dispatch (`1`/`true`).
pub const KERNEL_STEAL_ENV: &str = "HIN_KERNEL_STEAL";

/// When stealing, partition into `threads * STEAL_CHUNK_FACTOR` blocks so
/// the atomic cursor has enough granularity to rebalance a skewed tail.
pub const STEAL_CHUNK_FACTOR: usize = 4;

/// Process-wide explicit worker count; `0` = unset (fall through to the
/// environment / hardware default).
static KERNEL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Process-wide work-stealing override; `0` = unset (environment default),
/// `1` = forced on, `2` = forced off.
static WORK_STEALING: AtomicUsize = AtomicUsize::new(0);

/// Worker-count configuration for the parallel kernels.
///
/// A thin value type so callers can resolve, clamp and pass thread counts
/// explicitly (the proptests force `{1, 2, 4}` through it regardless of the
/// machine); [`ParallelConfig::default`] resolves the process-wide count
/// the same way [`kernel_threads`] does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    threads: usize,
}

impl ParallelConfig {
    /// Exactly `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Resolve from the environment: `HIN_KERNEL_THREADS` when set to a
    /// positive integer, otherwise [`std::thread::available_parallelism`].
    pub fn from_env() -> Self {
        let threads = std::env::var(KERNEL_THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Self { threads }
    }

    /// The configured worker count (≥ 1).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for ParallelConfig {
    /// The process-wide resolution: explicit [`set_kernel_threads`] >
    /// `HIN_KERNEL_THREADS` > hardware parallelism.
    fn default() -> Self {
        Self {
            threads: kernel_threads(),
        }
    }
}

/// Pin the process-wide kernel worker count (the `ServeConfig` plumbing).
/// `0` clears the override, falling back to environment/hardware
/// resolution.
pub fn set_kernel_threads(threads: usize) {
    KERNEL_THREADS.store(threads, Ordering::Relaxed);
}

/// The worker count the parallel kernels use when the caller doesn't pass
/// one: explicit [`set_kernel_threads`] > `HIN_KERNEL_THREADS` >
/// [`std::thread::available_parallelism`]. Always ≥ 1.
pub fn kernel_threads() -> usize {
    match KERNEL_THREADS.load(Ordering::Relaxed) {
        0 => ParallelConfig::from_env().threads(),
        n => n,
    }
}

/// Force work-stealing dispatch on or off process-wide (overrides the
/// `HIN_KERNEL_STEAL` environment variable).
pub fn set_work_stealing(enabled: bool) {
    WORK_STEALING.store(if enabled { 1 } else { 2 }, Ordering::Relaxed);
}

/// Clear the explicit override, falling back to the environment default.
pub fn clear_work_stealing() {
    WORK_STEALING.store(0, Ordering::Relaxed);
}

/// Whether the parallel kernels dispatch blocks through the work-stealing
/// cursor ([`run_blocks_stealing`]) instead of one static block per worker.
/// Off by default: explicit [`set_work_stealing`] > `HIN_KERNEL_STEAL`
/// (`1`/`true`) > off.
pub fn work_stealing() -> bool {
    match WORK_STEALING.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => std::env::var(KERNEL_STEAL_ENV)
            .map(|v| {
                let v = v.trim();
                v == "1" || v.eq_ignore_ascii_case("true")
            })
            .unwrap_or(false),
    }
}

/// Partition `0..nrows` into at most `threads` contiguous blocks balanced
/// by `row_weight` (typically per-row multiply-add counts, so nnz-heavy
/// rows don't pile onto one worker). Blocks are non-empty and cover the
/// range in order; fewer than `threads` blocks come back when there are
/// fewer rows (or all the weight fits earlier).
pub fn row_blocks(
    nrows: usize,
    threads: usize,
    mut row_weight: impl FnMut(usize) -> usize,
) -> Vec<Range<usize>> {
    let threads = threads.max(1);
    if nrows == 0 {
        return Vec::new();
    }
    if threads == 1 || nrows == 1 {
        // one block spanning every row — not a 0..nrows index list
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..nrows];
    }
    // Every row weighs at least 1 so empty rows still advance the split
    // points and no block degenerates to zero rows.
    let weights: Vec<u64> = (0..nrows).map(|r| row_weight(r).max(1) as u64).collect();
    let total: u64 = weights.iter().sum();
    let per_block = total.div_ceil(threads as u64).max(1);
    let mut blocks = Vec::with_capacity(threads);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (r, &w) in weights.iter().enumerate() {
        acc += w;
        if acc >= per_block && r + 1 < nrows {
            blocks.push(start..r + 1);
            start = r + 1;
            acc = 0;
        }
    }
    blocks.push(start..nrows);
    blocks
}

/// Run `work` over each block on scoped worker threads, returning per-block
/// results in block order. A single block runs inline on the caller's
/// thread — the serial path spawns nothing.
pub fn run_blocks<T: Send>(
    blocks: Vec<Range<usize>>,
    work: impl Fn(Range<usize>) -> T + Sync,
) -> Vec<T> {
    if blocks.len() <= 1 {
        return blocks.into_iter().map(work).collect();
    }
    let mut slots: Vec<Option<T>> = blocks.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        for (slot, block) in slots.iter_mut().zip(blocks) {
            let work = &work;
            s.spawn(move || {
                *slot = Some(work(block));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("scoped worker filled its slot"))
        .collect()
}

/// Partition `0..nrows` for the active dispatch strategy: one block per
/// worker for static dispatch, `threads * STEAL_CHUNK_FACTOR` finer blocks
/// when [`work_stealing`] is on (so the cursor can rebalance skewed rows).
pub fn partition_blocks(
    nrows: usize,
    threads: usize,
    row_weight: impl FnMut(usize) -> usize,
) -> Vec<Range<usize>> {
    let target = if work_stealing() {
        threads.max(1).saturating_mul(STEAL_CHUNK_FACTOR)
    } else {
        threads
    };
    row_blocks(nrows, target, row_weight)
}

/// Run `work` over the blocks with at most `threads` workers pulling from a
/// shared atomic cursor — late workers steal whatever blocks remain, so one
/// hub-heavy block can't serialize the whole pass behind a single worker.
/// Results come back in block order; stitched output is byte-for-byte the
/// same as [`run_blocks`] over the same partition.
pub fn run_blocks_stealing<T: Send>(
    blocks: Vec<Range<usize>>,
    threads: usize,
    work: impl Fn(Range<usize>) -> T + Sync,
) -> Vec<T> {
    let threads = threads.max(1).min(blocks.len());
    if blocks.len() <= 1 || threads == 1 {
        return blocks.into_iter().map(work).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = blocks.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let (cursor, slots, blocks, work) = (&cursor, &slots, &blocks, &work);
            s.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(block) = blocks.get(i) else { break };
                let result = work(block.clone());
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("stealing worker filled its slot")
        })
        .collect()
}

/// Dispatch the blocks through the strategy [`work_stealing`] selects:
/// the atomic-cursor pool when stealing is on, one scoped thread per block
/// otherwise. Either way results return in block order.
pub fn run_partitioned<T: Send>(
    blocks: Vec<Range<usize>>,
    threads: usize,
    work: impl Fn(Range<usize>) -> T + Sync,
) -> Vec<T> {
    if work_stealing() {
        run_blocks_stealing(blocks, threads, work)
    } else {
        run_blocks(blocks, work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_resolution_and_clamping() {
        assert_eq!(ParallelConfig::with_threads(0).threads(), 1);
        assert_eq!(ParallelConfig::with_threads(4).threads(), 4);
        assert!(ParallelConfig::from_env().threads() >= 1);
        assert!(kernel_threads() >= 1);
        // explicit override wins, clearing falls back
        set_kernel_threads(7);
        assert_eq!(kernel_threads(), 7);
        assert_eq!(ParallelConfig::default().threads(), 7);
        set_kernel_threads(0);
        assert!(kernel_threads() >= 1);
    }

    #[test]
    fn blocks_cover_contiguously_and_balance_weight() {
        // skewed weights: the heavy head must not drag the whole range
        // into one block
        let w = [100usize, 1, 1, 1, 1, 1, 1, 100];
        let blocks = row_blocks(8, 3, |r| w[r]);
        assert!(!blocks.is_empty() && blocks.len() <= 3);
        assert_eq!(blocks[0].start, 0);
        assert_eq!(blocks.last().unwrap().end, 8);
        for pair in blocks.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "contiguous cover");
            assert!(!pair[0].is_empty());
        }
        // uniform weights split near-evenly
        let even = row_blocks(100, 4, |_| 1);
        assert_eq!(even.len(), 4);
        assert!(even.iter().all(|b| b.len() >= 20));
    }

    #[test]
    fn degenerate_block_shapes() {
        assert!(row_blocks(0, 4, |_| 1).is_empty());
        assert_eq!(row_blocks(1, 4, |_| 1), vec![0..1]);
        assert_eq!(row_blocks(5, 1, |_| 1), vec![0..5]);
        // more threads than rows: at most one block per row
        let blocks = row_blocks(3, 8, |_| 1);
        assert!(blocks.len() <= 3);
        assert_eq!(blocks.last().unwrap().end, 3);
    }

    #[test]
    fn stealing_dispatch_matches_static_dispatch_in_order() {
        let blocks = row_blocks(97, 4, |r| if r < 3 { 50 } else { 1 });
        let want = run_blocks(blocks.clone(), |b| (b.start, b.end));
        for threads in [1, 2, 4, 9] {
            let got = run_blocks_stealing(blocks.clone(), threads, |b| (b.start, b.end));
            assert_eq!(got, want, "threads={threads}");
        }
        assert!(run_blocks_stealing(Vec::new(), 4, |b| b.start).is_empty());
        #[allow(clippy::single_range_in_vec_init)]
        let one = vec![2..5];
        assert_eq!(run_blocks_stealing(one, 4, |b| b.len()), vec![3]);
    }

    #[test]
    fn stealing_toggle_resolves_and_refines_partitions() {
        // default off (no env var in the test environment)
        clear_work_stealing();
        assert!(!work_stealing());
        set_work_stealing(true);
        assert!(work_stealing());
        let fine = partition_blocks(256, 2, |_| 1);
        assert!(
            fine.len() > 2 && fine.len() <= 2 * STEAL_CHUNK_FACTOR,
            "stealing partitions are finer than one-per-worker: {}",
            fine.len()
        );
        let got = run_partitioned(fine.clone(), 2, |b| b.start);
        assert_eq!(got, fine.iter().map(|b| b.start).collect::<Vec<_>>());
        set_work_stealing(false);
        assert!(!work_stealing());
        assert!(partition_blocks(256, 2, |_| 1).len() <= 2);
        clear_work_stealing();
    }

    #[test]
    fn run_blocks_returns_in_block_order() {
        let blocks = row_blocks(64, 4, |_| 1);
        let want: Vec<usize> = blocks.iter().map(|b| b.start).collect();
        let got = run_blocks(blocks, |b| b.start);
        assert_eq!(got, want);
        // the single-block inline path
        #[allow(clippy::single_range_in_vec_init)]
        let one_block = vec![0..9];
        assert_eq!(run_blocks(one_block, |b| b.end), vec![9]);
        assert!(run_blocks(Vec::new(), |b| b.end).is_empty());
    }
}
