//! Dense vector kernels shared by the iterative solvers.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length (debug builds only; release builds
/// truncate to the shorter length via the zip).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Sum of absolute values (L1 norm).
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Maximum absolute component (L∞ norm).
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// `y ← y + alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← alpha * x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Normalize `x` to unit L2 norm in place. Leaves the zero vector untouched
/// and returns the original norm.
pub fn normalize_l2(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Normalize `x` to unit L1 mass in place (probability-simplex projection for
/// non-negative vectors). Leaves the zero vector untouched and returns the
/// original mass.
pub fn normalize_l1(x: &mut [f64]) -> f64 {
    let n = norm1(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// L∞ distance between two vectors — the convergence criterion used by every
/// fixed-point iteration in the workspace.
#[inline]
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).fold(0.0, |m, (x, y)| m.max((x - y).abs()))
}

/// Cosine similarity; 0 when either vector is all-zero.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = norm2(a);
    let nb = norm2(b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
    }
}

/// Squared Euclidean distance.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, 4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm2(&a), 5.0);
        assert_eq!(norm1(&a), 7.0);
        assert_eq!(norm_inf(&a), 4.0);
    }

    #[test]
    fn axpy_scale() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        scale(0.5, &mut y);
        assert_eq!(y, [6.0, 12.0]);
    }

    #[test]
    fn normalization() {
        let mut x = [3.0, 4.0];
        let n = normalize_l2(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);

        let mut p = [2.0, 6.0];
        normalize_l1(&mut p);
        assert!((p[0] - 0.25).abs() < 1e-12 && (p[1] - 0.75).abs() < 1e-12);

        let mut z = [0.0, 0.0];
        assert_eq!(normalize_l2(&mut z), 0.0);
        assert_eq!(z, [0.0, 0.0]);
    }

    #[test]
    fn cosine_edge_cases() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn distances() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 3.0]), 2.0);
    }
}
