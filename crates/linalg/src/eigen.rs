//! Cyclic Jacobi eigendecomposition for symmetric dense matrices.
//!
//! Spectral clustering and the small EM statistics in RankClus/NetClus need
//! full eigendecompositions of modest matrices (n up to ~1500). The cyclic
//! Jacobi method is simple, unconditionally stable and accurate to machine
//! precision for symmetric input, which makes it the right tool here; large
//! sparse problems go through [`crate::lanczos`] instead.

use crate::dense::DMat;

/// Result of a symmetric eigendecomposition: `a = V diag(λ) Vᵀ`.
#[derive(Clone, Debug)]
pub struct EigenDecomposition {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Eigenvectors as matrix columns, ordered to match `values`. Each column
    /// has unit L2 norm.
    pub vectors: DMat,
    /// Number of Jacobi sweeps performed.
    pub sweeps: usize,
}

impl EigenDecomposition {
    /// Eigenvector for eigenvalue index `i` (ascending order) as an owned
    /// vector.
    pub fn vector(&self, i: usize) -> Vec<f64> {
        self.vectors.col(i)
    }
}

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// Sweeps over all off-diagonal entries with classical 2×2 rotations until
/// the off-diagonal Frobenius mass falls below `tol` (relative to the total
/// Frobenius norm) or `max_sweeps` is reached.
///
/// # Panics
/// Panics when `a` is not square.
pub fn jacobi_eigen(a: &DMat, tol: f64, max_sweeps: usize) -> EigenDecomposition {
    assert_eq!(a.rows(), a.cols(), "jacobi_eigen requires a square matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = DMat::identity(n);
    let total = m.frobenius().max(f64::MIN_POSITIVE);

    let mut sweeps = 0;
    while sweeps < max_sweeps {
        let off = off_diagonal_norm(&m);
        if off / total <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= tol * total / (n as f64 * n as f64).max(1.0) {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // rotation angle: tan(2θ) = 2 a_pq / (a_qq − a_pp)
                let theta = 0.5 * (aqq - app) / apq;
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                rotate(&mut m, p, q, c, s);
                rotate_columns(&mut v, p, q, c, s);
            }
        }
        sweeps += 1;
    }

    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&i, &j| diag[i].partial_cmp(&diag[j]).expect("finite eigenvalues"));

    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = DMat::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        for r in 0..n {
            vectors.set(r, dst, v.get(r, src));
        }
    }
    EigenDecomposition {
        values,
        vectors,
        sweeps,
    }
}

/// Apply the two-sided Jacobi rotation `Jᵀ M J` for the `(p, q)` plane.
fn rotate(m: &mut DMat, p: usize, q: usize, c: f64, s: f64) {
    let n = m.rows();
    for k in 0..n {
        let mkp = m.get(k, p);
        let mkq = m.get(k, q);
        m.set(k, p, c * mkp - s * mkq);
        m.set(k, q, s * mkp + c * mkq);
    }
    for k in 0..n {
        let mpk = m.get(p, k);
        let mqk = m.get(q, k);
        m.set(p, k, c * mpk - s * mqk);
        m.set(q, k, s * mpk + c * mqk);
    }
}

/// Apply the rotation to the eigenvector accumulator (columns p and q).
fn rotate_columns(v: &mut DMat, p: usize, q: usize, c: f64, s: f64) {
    let n = v.rows();
    for k in 0..n {
        let vkp = v.get(k, p);
        let vkq = v.get(k, q);
        v.set(k, p, c * vkp - s * vkq);
        v.set(k, q, s * vkp + c * vkq);
    }
}

fn off_diagonal_norm(m: &DMat) -> f64 {
    let n = m.rows();
    let mut acc = 0.0;
    for r in 0..n {
        for c in 0..n {
            if r != c {
                acc += m.get(r, c) * m.get(r, c);
            }
        }
    }
    acc.sqrt()
}

/// Convenience: the `k` smallest eigenpairs of a symmetric matrix.
///
/// Returns `(values, vectors)` where `vectors` is `n×k` with one eigenvector
/// per column.
pub fn smallest_eigenpairs(a: &DMat, k: usize) -> (Vec<f64>, DMat) {
    let decomp = jacobi_eigen(a, 1e-12, 100);
    let k = k.min(decomp.values.len());
    let n = a.rows();
    let mut vecs = DMat::zeros(n, k);
    for j in 0..k {
        for r in 0..n {
            vecs.set(r, j, decomp.vectors.get(r, j));
        }
    }
    (decomp.values[..k].to_vec(), vecs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::dot;

    fn reconstruct(e: &EigenDecomposition) -> DMat {
        let n = e.values.len();
        let mut lambda = DMat::zeros(n, n);
        for i in 0..n {
            lambda.set(i, i, e.values[i]);
        }
        e.vectors.matmul(&lambda).matmul(&e.vectors.transpose())
    }

    #[test]
    fn diagonal_matrix_eigen() {
        let a = DMat::from_rows(&[&[3.0, 0.0], &[0.0, -1.0]]);
        let e = jacobi_eigen(&a, 1e-14, 50);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3
        let a = DMat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = jacobi_eigen(&a, 1e-14, 50);
        assert!((e.values[0] - 1.0).abs() < 1e-10);
        assert!((e.values[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        // deterministic pseudo-random symmetric matrix
        let n = 12;
        let mut a = DMat::zeros(n, n);
        let mut state = 1u64;
        for r in 0..n {
            for c in r..n {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
                a.set(r, c, v);
                a.set(c, r, v);
            }
        }
        let e = jacobi_eigen(&a, 1e-13, 100);
        assert!(reconstruct(&e).max_abs_diff(&a) < 1e-8);
        for i in 0..n {
            for j in 0..n {
                let d = dot(&e.vectors.col(i), &e.vectors.col(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (d - expect).abs() < 1e-8,
                    "columns {i},{j} not orthonormal: {d}"
                );
            }
        }
        // ascending order
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn trace_is_eigenvalue_sum() {
        let a = DMat::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 2.0], &[0.0, 2.0, 1.0]]);
        let e = jacobi_eigen(&a, 1e-14, 100);
        let sum: f64 = e.values.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-10);
    }

    #[test]
    fn smallest_pairs_subset() {
        let a = DMat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (vals, vecs) = smallest_eigenpairs(&a, 1);
        assert_eq!(vals.len(), 1);
        assert!((vals[0] - 1.0).abs() < 1e-10);
        assert_eq!((vecs.rows(), vecs.cols()), (2, 1));
        // eigenvector of λ=1 is ±(1,-1)/√2
        let v = vecs.col(0);
        assert!((v[0] + v[1]).abs() < 1e-8);
    }
}
