//! Versioned, checksummed binary codec for [`Csr`] matrices.
//!
//! This is the persistence boundary the serving layer's snapshot/warm-start
//! machinery stands on: commuting matrices are expensive to materialize and
//! endlessly reusable, so they must survive a server's death. The format is
//! deliberately boring — magic, version, dims, the three CSR arrays,
//! little-endian throughout, an FNV-1a 64 checksum over everything — and the
//! decoder is deliberately paranoid: corrupt, truncated, or hostile input
//! returns a typed [`CodecError`], never panics, and never allocates
//! according to unvalidated header fields (arrays are read in bounded
//! chunks, so a header claiming 2⁶⁴ entries fails on the first missing
//! byte, not in the allocator).
//!
//! # Wire format (version 1)
//!
//! ```text
//! magic     4 bytes   b"HCSR"
//! version   u32 LE    1
//! nrows     u64 LE
//! ncols     u64 LE
//! nnz       u64 LE
//! indptr    (nrows+1) × u64 LE      row start offsets; indptr[0] = 0,
//!                                   non-decreasing, indptr[nrows] = nnz
//! indices   nnz × u32 LE            column ids, strictly increasing per row
//! data      nnz × f64 LE bit pattern (bit-exact round trip, NaN included)
//! checksum  u64 LE    FNV-1a 64 over every preceding byte
//! ```
//!
//! Decoding re-validates the CSR invariants the rest of the workspace
//! relies on (sorted rows enable binary-searched [`Csr::get`]), so a
//! decoded matrix is safe to hand to any kernel.

use std::io::{self, Read, Write};

use crate::csr::Csr;

/// The codec's magic bytes.
pub const MAGIC: [u8; 4] = *b"HCSR";

/// Current wire-format version.
pub const VERSION: u32 = 1;

/// Bytes decoded per read while streaming an array in — the bound that
/// keeps a hostile header from driving one giant allocation.
const READ_CHUNK: usize = 64 * 1024;

/// Everything that can go wrong encoding or decoding a matrix.
///
/// Decoding never panics: every malformed input maps to one of these.
#[derive(Debug)]
pub enum CodecError {
    /// The underlying reader/writer failed.
    Io(io::Error),
    /// The input does not start with [`MAGIC`].
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The input's version is not one this build can decode.
    UnsupportedVersion(u32),
    /// The input ended before the header-announced payload did.
    Truncated,
    /// The stored checksum does not match the decoded bytes.
    ChecksumMismatch {
        /// Checksum recorded in the input.
        stored: u64,
        /// Checksum computed over the decoded bytes.
        computed: u64,
    },
    /// A header dimension does not fit this platform's `usize` (or
    /// overflows derived sizes such as `nrows + 1`).
    DimOverflow {
        /// Which header field overflowed.
        field: &'static str,
        /// The offending value.
        value: u64,
    },
    /// The payload decoded but violates a CSR structural invariant.
    Malformed(String),
}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "i/o error: {e}"),
            CodecError::BadMagic { found } => {
                // the variant is shared by every format built on this
                // codec (Csr blobs, snapshot containers), so the message
                // names only what was found
                write!(f, "bad magic bytes {found:?}")
            }
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported codec version {v} (this build reads {VERSION})"
                )
            }
            CodecError::Truncated => write!(f, "input truncated mid-payload"),
            CodecError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CodecError::DimOverflow { field, value } => {
                write!(
                    f,
                    "dimension overflow: {field} = {value} does not fit this platform"
                )
            }
            CodecError::Malformed(msg) => write!(f, "malformed CSR payload: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Incremental FNV-1a 64-bit checksum — the codec's integrity hash.
///
/// Not cryptographic; it detects corruption (bit flips, truncation mended
/// by zeros, interleaved writes), which is the failure mode snapshots on
/// local disks actually have.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// Absorb one little-endian `u64` *word* in a single mix step.
    ///
    /// This is the word-granular FNV variant the arena snapshot format
    /// (v2) uses: its files are 8-byte aligned end to end, so hashing per
    /// word instead of per byte makes integrity checking ~8× cheaper —
    /// which matters because the checksum is the only per-byte work left
    /// on the zero-copy restore path. Note the digest differs from
    /// [`Fnv64::update`] over the same bytes; the two are distinct hash
    /// domains and each format specifies which it uses.
    #[inline]
    pub fn update_word(&mut self, word: u64) {
        self.0 = (self.0 ^ word).wrapping_mul(Self::PRIME);
    }

    /// The digest over everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Write `bytes`, folding them into the running checksum.
pub fn write_hashed<W: Write>(w: &mut W, hash: &mut Fnv64, bytes: &[u8]) -> Result<(), CodecError> {
    hash.update(bytes);
    w.write_all(bytes).map_err(CodecError::Io)
}

/// Fill `buf` exactly, folding it into the running checksum. A stream that
/// ends early is a [`CodecError::Truncated`], not an opaque i/o error.
pub fn read_hashed<R: Read>(r: &mut R, hash: &mut Fnv64, buf: &mut [u8]) -> Result<(), CodecError> {
    read_exact_or_truncated(r, buf)?;
    hash.update(buf);
    Ok(())
}

/// `read_exact` with end-of-stream mapped to [`CodecError::Truncated`].
pub fn read_exact_or_truncated<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), CodecError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            CodecError::Truncated
        } else {
            CodecError::Io(e)
        }
    })
}

fn usize_of(field: &'static str, value: u64) -> Result<usize, CodecError> {
    usize::try_from(value).map_err(|_| CodecError::DimOverflow { field, value })
}

/// Decode `count` little-endian `u64`s in bounded chunks.
fn read_u64s<R: Read>(r: &mut R, hash: &mut Fnv64, count: usize) -> Result<Vec<u64>, CodecError> {
    let mut out = Vec::new();
    let mut buf = vec![0u8; READ_CHUNK.min(count.saturating_mul(8).max(8))];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(buf.len() / 8);
        let bytes = &mut buf[..take * 8];
        read_hashed(r, hash, bytes)?;
        out.extend(
            bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk"))),
        );
        remaining -= take;
    }
    Ok(out)
}

/// Decode `count` little-endian `u32`s in bounded chunks.
fn read_u32s<R: Read>(r: &mut R, hash: &mut Fnv64, count: usize) -> Result<Vec<u32>, CodecError> {
    let mut out = Vec::new();
    let mut buf = vec![0u8; READ_CHUNK.min(count.saturating_mul(4).max(4))];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(buf.len() / 4);
        let bytes = &mut buf[..take * 4];
        read_hashed(r, hash, bytes)?;
        out.extend(
            bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk"))),
        );
        remaining -= take;
    }
    Ok(out)
}

impl Csr {
    /// Encoded size in bytes of this matrix under the version-1 format —
    /// what [`Csr::to_writer`] will emit. Snapshot byte budgets are priced
    /// with [`Csr::nbytes`] (resident heap cost); this is the wire cost.
    pub fn encoded_len(&self) -> usize {
        // magic + version + 3 dims + indptr + indices + data + checksum
        4 + 4 + 3 * 8 + (self.nrows() + 1) * 8 + self.nnz() * 4 + self.nnz() * 8 + 8
    }

    /// Serialize in the versioned binary format described in the module
    /// docs. The encoding is deterministic: equal matrices encode to equal
    /// bytes, which is what makes snapshot round-trip tests byte-exact.
    pub fn to_writer<W: Write>(&self, w: &mut W) -> Result<(), CodecError> {
        let mut hash = Fnv64::new();
        write_hashed(w, &mut hash, &MAGIC)?;
        write_hashed(w, &mut hash, &VERSION.to_le_bytes())?;
        write_hashed(w, &mut hash, &(self.nrows() as u64).to_le_bytes())?;
        write_hashed(w, &mut hash, &(self.ncols() as u64).to_le_bytes())?;
        write_hashed(w, &mut hash, &(self.nnz() as u64).to_le_bytes())?;
        let (indptr, indices, data) = self.parts();
        let mut buf = Vec::with_capacity(READ_CHUNK);
        for chunk in indptr.chunks(READ_CHUNK / 8) {
            buf.clear();
            for &p in chunk {
                buf.extend_from_slice(&(p as u64).to_le_bytes());
            }
            write_hashed(w, &mut hash, &buf)?;
        }
        for chunk in indices.chunks(READ_CHUNK / 4) {
            buf.clear();
            for &c in chunk {
                buf.extend_from_slice(&c.to_le_bytes());
            }
            write_hashed(w, &mut hash, &buf)?;
        }
        for chunk in data.chunks(READ_CHUNK / 8) {
            buf.clear();
            for &v in chunk {
                buf.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            write_hashed(w, &mut hash, &buf)?;
        }
        w.write_all(&hash.finish().to_le_bytes())?;
        Ok(())
    }

    /// Decode a matrix previously written by [`Csr::to_writer`].
    ///
    /// Consumes exactly one encoded matrix from `r` (no trailing read), so
    /// container formats can pack several back to back. Every failure mode
    /// — wrong magic, unknown version, truncation, checksum mismatch,
    /// dimension overflow, or a payload violating CSR invariants — is a
    /// typed [`CodecError`]; this function never panics on bad input.
    pub fn from_reader<R: Read>(r: &mut R) -> Result<Csr, CodecError> {
        let mut hash = Fnv64::new();
        let mut magic = [0u8; 4];
        read_hashed(r, &mut hash, &mut magic)?;
        if magic != MAGIC {
            return Err(CodecError::BadMagic { found: magic });
        }
        let mut word = [0u8; 4];
        read_hashed(r, &mut hash, &mut word)?;
        let version = u32::from_le_bytes(word);
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let mut dims = [0u8; 24];
        read_hashed(r, &mut hash, &mut dims)?;
        let nrows64 = u64::from_le_bytes(dims[0..8].try_into().expect("8 bytes"));
        let ncols64 = u64::from_le_bytes(dims[8..16].try_into().expect("8 bytes"));
        let nnz64 = u64::from_le_bytes(dims[16..24].try_into().expect("8 bytes"));
        let nrows = usize_of("nrows", nrows64)?;
        let ncols = usize_of("ncols", ncols64)?;
        let nnz = usize_of("nnz", nnz64)?;
        let indptr_len = nrows.checked_add(1).ok_or(CodecError::DimOverflow {
            field: "nrows",
            value: nrows64,
        })?;

        let indptr64 = read_u64s(r, &mut hash, indptr_len)?;
        let indices = read_u32s(r, &mut hash, nnz)?;
        let data_bits = read_u64s(r, &mut hash, nnz)?;

        let mut stored = [0u8; 8];
        read_exact_or_truncated(r, &mut stored)?;
        let stored = u64::from_le_bytes(stored);
        let computed = hash.finish();
        if stored != computed {
            return Err(CodecError::ChecksumMismatch { stored, computed });
        }

        // Checksum holds: now enforce the structural invariants the rest
        // of the workspace assumes (so a decoded matrix is safe anywhere).
        let mut indptr = Vec::with_capacity(indptr_len);
        for &p in &indptr64 {
            indptr.push(usize_of("indptr entry", p)?);
        }
        if indptr.first() != Some(&0) {
            return Err(CodecError::Malformed("indptr[0] must be 0".to_string()));
        }
        if indptr.last() != Some(&nnz) {
            return Err(CodecError::Malformed(format!(
                "indptr[nrows] = {} but nnz = {nnz}",
                indptr.last().copied().unwrap_or(0)
            )));
        }
        if indptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(CodecError::Malformed(
                "indptr must be non-decreasing".to_string(),
            ));
        }
        for row in 0..nrows {
            let cols = &indices[indptr[row]..indptr[row + 1]];
            if cols.iter().any(|&c| (c as usize) >= ncols) {
                return Err(CodecError::Malformed(format!(
                    "row {row} holds a column index >= ncols ({ncols})"
                )));
            }
            if cols.windows(2).any(|w| w[0] >= w[1]) {
                return Err(CodecError::Malformed(format!(
                    "row {row} column indices are not strictly increasing"
                )));
            }
        }
        let data: Vec<f64> = data_bits.into_iter().map(f64::from_bits).collect();
        // This is the decode-per-matrix path the arena format (v2) exists
        // to avoid; the storage tier counts it so warm-restore tests can
        // assert it never runs.
        crate::arena::note_heap_decode();
        Ok(Csr::from_parts_unchecked(
            nrows, ncols, indptr, indices, data,
        ))
    }
}

/// Magic bytes opening every wire frame.
pub const FRAME_MAGIC: [u8; 4] = *b"HFRM";

/// Default upper bound on a frame payload (1 GiB). Callers pass their own
/// cap to [`read_frame`]; this is the figure to reach for when one frame
/// may carry a whole snapshot image.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 30;

/// Write one length-prefixed, checksummed frame.
///
/// # Frame layout
///
/// ```text
/// magic     4 bytes   b"HFRM"
/// kind      u8        caller-defined frame type tag
/// len       u32 LE    payload length in bytes
/// payload   len bytes
/// checksum  u64 LE    FNV-1a 64 over every preceding byte
/// ```
///
/// This is the unit the cross-process serving transport exchanges: the
/// length prefix lets a reader frame the stream without a delimiter scan,
/// and the trailing checksum turns a flipped bit anywhere in transit into
/// a typed [`CodecError::ChecksumMismatch`] instead of a garbled result.
pub fn write_frame<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> Result<(), CodecError> {
    let len = u32::try_from(payload.len()).map_err(|_| CodecError::DimOverflow {
        field: "frame payload",
        value: payload.len() as u64,
    })?;
    let mut hash = Fnv64::new();
    write_hashed(w, &mut hash, &FRAME_MAGIC)?;
    write_hashed(w, &mut hash, &[kind])?;
    write_hashed(w, &mut hash, &len.to_le_bytes())?;
    write_hashed(w, &mut hash, payload)?;
    w.write_all(&hash.finish().to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Read one frame written by [`write_frame`], returning `(kind, payload)`.
///
/// `max_payload` bounds the announced length *before* anything is
/// allocated, so a hostile or corrupt length prefix cannot drive a giant
/// allocation; the payload itself is still read in bounded chunks. Every
/// failure — bad magic, oversized length, truncation, checksum mismatch —
/// is a typed [`CodecError`], never a panic.
pub fn read_frame<R: Read>(r: &mut R, max_payload: usize) -> Result<(u8, Vec<u8>), CodecError> {
    let mut hash = Fnv64::new();
    let mut magic = [0u8; 4];
    read_hashed(r, &mut hash, &mut magic)?;
    if magic != FRAME_MAGIC {
        return Err(CodecError::BadMagic { found: magic });
    }
    let mut kind = [0u8; 1];
    read_hashed(r, &mut hash, &mut kind)?;
    let mut len_bytes = [0u8; 4];
    read_hashed(r, &mut hash, &mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > max_payload {
        return Err(CodecError::Malformed(format!(
            "frame payload length {len} exceeds the {max_payload}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len.min(READ_CHUNK)];
    let mut out = Vec::new();
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(payload.len());
        read_hashed(r, &mut hash, &mut payload[..take])?;
        out.extend_from_slice(&payload[..take]);
        remaining -= take;
    }
    let mut stored = [0u8; 8];
    read_exact_or_truncated(r, &mut stored)?;
    let stored = u64::from_le_bytes(stored);
    let computed = hash.finish();
    if stored != computed {
        return Err(CodecError::ChecksumMismatch { stored, computed });
    }
    Ok((kind[0], out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_triplets(
            3,
            4,
            [
                (0u32, 0u32, 1.5),
                (0, 3, -2.0),
                (2, 1, 0.25),
                (2, 2, f64::NAN),
            ],
        )
    }

    fn encode(m: &Csr) -> Vec<u8> {
        let mut bytes = Vec::new();
        m.to_writer(&mut bytes).expect("vec writes cannot fail");
        bytes
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let m = sample();
        let bytes = encode(&m);
        assert_eq!(bytes.len(), m.encoded_len());
        let back = Csr::from_reader(&mut bytes.as_slice()).expect("round trip");
        // NaN breaks PartialEq; compare re-encoded bytes instead, which is
        // the stronger property anyway (bit-exact persistence).
        assert_eq!(encode(&back), bytes);
        assert_eq!((back.nrows(), back.ncols(), back.nnz()), (3, 4, 4));
        assert!(back.get(2, 2).is_nan(), "NaN survives bit-exactly");
    }

    #[test]
    fn empty_matrix_round_trips() {
        let m = Csr::zeros(5, 7);
        let back = Csr::from_reader(&mut encode(&m).as_slice()).expect("empty");
        assert_eq!(back, m);
    }

    #[test]
    fn decoder_leaves_trailing_bytes_unread() {
        let m = sample();
        let mut bytes = encode(&m);
        bytes.extend_from_slice(b"trailing");
        let mut cursor = bytes.as_slice();
        let _ = Csr::from_reader(&mut cursor).expect("decodes the prefix");
        assert_eq!(cursor, b"trailing", "exactly one matrix consumed");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode(&sample());
        bytes[0] = b'X';
        assert!(matches!(
            Csr::from_reader(&mut bytes.as_slice()),
            Err(CodecError::BadMagic { .. })
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = encode(&sample());
        bytes[4] = 99;
        assert!(matches!(
            Csr::from_reader(&mut bytes.as_slice()),
            Err(CodecError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_at_every_prefix_is_an_error_not_a_panic() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            let err = Csr::from_reader(&mut &bytes[..cut]).expect_err("prefix must fail");
            assert!(
                matches!(err, CodecError::Truncated),
                "cut at {cut}: expected Truncated, got {err}"
            );
        }
    }

    #[test]
    fn checksum_detects_a_flipped_payload_bit() {
        let mut bytes = encode(&sample());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            Csr::from_reader(&mut bytes.as_slice()),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn checksum_detects_a_corrupted_trailer() {
        let mut bytes = encode(&sample());
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(matches!(
            Csr::from_reader(&mut bytes.as_slice()),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn dim_overflow_is_rejected_without_allocating() {
        // header claims nrows = u64::MAX: nrows + 1 overflows
        let mut bytes = Vec::new();
        let mut hash = Fnv64::new();
        write_hashed(&mut bytes, &mut hash, &MAGIC).unwrap();
        write_hashed(&mut bytes, &mut hash, &VERSION.to_le_bytes()).unwrap();
        write_hashed(&mut bytes, &mut hash, &u64::MAX.to_le_bytes()).unwrap();
        write_hashed(&mut bytes, &mut hash, &4u64.to_le_bytes()).unwrap();
        write_hashed(&mut bytes, &mut hash, &0u64.to_le_bytes()).unwrap();
        assert!(matches!(
            Csr::from_reader(&mut bytes.as_slice()),
            Err(CodecError::DimOverflow { field: "nrows", .. })
        ));
    }

    #[test]
    fn absurd_nnz_fails_on_truncation_not_in_the_allocator() {
        // header claims 2^40 entries but carries none: the chunked reader
        // must hit Truncated immediately instead of allocating terabytes
        let mut bytes = Vec::new();
        let mut hash = Fnv64::new();
        write_hashed(&mut bytes, &mut hash, &MAGIC).unwrap();
        write_hashed(&mut bytes, &mut hash, &VERSION.to_le_bytes()).unwrap();
        write_hashed(&mut bytes, &mut hash, &0u64.to_le_bytes()).unwrap();
        write_hashed(&mut bytes, &mut hash, &0u64.to_le_bytes()).unwrap();
        write_hashed(&mut bytes, &mut hash, &(1u64 << 40).to_le_bytes()).unwrap();
        write_hashed(&mut bytes, &mut hash, &0u64.to_le_bytes()).unwrap(); // indptr[0]
        assert!(matches!(
            Csr::from_reader(&mut bytes.as_slice()),
            Err(CodecError::Truncated)
        ));
    }

    /// Re-encode a malformed payload with a *valid* checksum, so structural
    /// validation (not the checksum) must catch it.
    fn reencode_with_checksum(body_mutator: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
        let full = encode(&sample());
        let mut body = full[..full.len() - 8].to_vec();
        body_mutator(&mut body);
        let mut hash = Fnv64::new();
        hash.update(&body);
        body.extend_from_slice(&hash.finish().to_le_bytes());
        body
    }

    #[test]
    fn structural_invariants_are_validated_after_the_checksum() {
        // indptr[0] != 0 (first indptr entry starts at byte 32)
        let bytes = reencode_with_checksum(|b| b[32] = 1);
        assert!(matches!(
            Csr::from_reader(&mut bytes.as_slice()),
            Err(CodecError::Malformed(_))
        ));

        // a column index >= ncols: indices start after 32 + 4*8 bytes
        let bytes = reencode_with_checksum(|b| {
            let indices_at = 32 + 4 * 8;
            b[indices_at] = 200; // ncols is 4
        });
        assert!(matches!(
            Csr::from_reader(&mut bytes.as_slice()),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn frame_round_trips_kind_and_payload() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, 7, b"hello frame").unwrap();
        write_frame(&mut bytes, 0, b"").unwrap();
        let mut cursor = bytes.as_slice();
        let (kind, payload) = read_frame(&mut cursor, MAX_FRAME_PAYLOAD).unwrap();
        assert_eq!((kind, payload.as_slice()), (7, b"hello frame".as_slice()));
        let (kind, payload) = read_frame(&mut cursor, MAX_FRAME_PAYLOAD).unwrap();
        assert_eq!((kind, payload.len()), (0, 0));
        assert!(cursor.is_empty(), "both frames consumed exactly");
    }

    #[test]
    fn frame_truncation_at_every_prefix_is_typed() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, 3, b"payload bytes").unwrap();
        for cut in 0..bytes.len() {
            let err =
                read_frame(&mut &bytes[..cut], MAX_FRAME_PAYLOAD).expect_err("prefix must fail");
            assert!(
                matches!(err, CodecError::Truncated),
                "cut at {cut}: expected Truncated, got {err}"
            );
        }
    }

    #[test]
    fn frame_detects_any_flipped_bit() {
        let mut clean = Vec::new();
        write_frame(&mut clean, 3, b"sensitive").unwrap();
        for byte in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[byte] ^= 0x10;
            assert!(
                read_frame(&mut bytes.as_slice(), MAX_FRAME_PAYLOAD).is_err(),
                "flip at byte {byte} must not decode cleanly"
            );
        }
    }

    #[test]
    fn frame_length_cap_rejects_before_allocating() {
        // header announces 2^31 bytes; a 16-byte cap must reject on the
        // prefix alone (the input carries no payload at all)
        let mut bytes = Vec::new();
        let mut hash = Fnv64::new();
        write_hashed(&mut bytes, &mut hash, &FRAME_MAGIC).unwrap();
        write_hashed(&mut bytes, &mut hash, &[1u8]).unwrap();
        write_hashed(&mut bytes, &mut hash, &(1u32 << 31).to_le_bytes()).unwrap();
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), 16),
            Err(CodecError::Malformed(_))
        ));
    }
}
