//! Direct linear solves for the small dense systems that appear in
//! least-squares fits (densification exponents, power-law regression
//! diagnostics).

use crate::dense::DMat;

/// Solve `a x = b` by Gaussian elimination with partial pivoting.
///
/// Returns `None` when the matrix is numerically singular (pivot below
/// `1e-12` after scaling).
///
/// # Panics
/// Panics when `a` is not square or `b` has the wrong length.
pub fn solve_linear(a: &DMat, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.rows(), a.cols(), "solve_linear requires a square matrix");
    assert_eq!(a.rows(), b.len(), "solve_linear: rhs length mismatch");
    let n = a.rows();
    let mut m = a.clone();
    let mut x: Vec<f64> = b.to_vec();

    for col in 0..n {
        // partial pivot
        let mut pivot_row = col;
        let mut pivot_val = m.get(col, col).abs();
        for r in (col + 1)..n {
            let v = m.get(r, col).abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = m.get(col, c);
                m.set(col, c, m.get(pivot_row, c));
                m.set(pivot_row, c, tmp);
            }
            x.swap(col, pivot_row);
        }
        let pivot = m.get(col, col);
        for r in (col + 1)..n {
            let factor = m.get(r, col) / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = m.get(r, c) - factor * m.get(col, c);
                m.set(r, c, v);
            }
            x[r] -= factor * x[col];
        }
    }

    // back substitution
    for col in (0..n).rev() {
        let mut acc = x[col];
        for c in (col + 1)..n {
            acc -= m.get(col, c) * x[c];
        }
        x[col] = acc / m.get(col, col);
    }
    Some(x)
}

/// Ordinary least squares fit `y ≈ X β` via the normal equations.
///
/// `xs` holds one predictor row per observation. Returns `None` when the
/// normal matrix is singular (e.g. collinear predictors).
pub fn least_squares(xs: &[Vec<f64>], ys: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(xs.len(), ys.len(), "least_squares: length mismatch");
    let n = xs.len();
    if n == 0 {
        return None;
    }
    let p = xs[0].len();
    let mut xtx = DMat::zeros(p, p);
    let mut xty = vec![0.0; p];
    for (row, &y) in xs.iter().zip(ys) {
        assert_eq!(row.len(), p, "least_squares: ragged predictors");
        for i in 0..p {
            xty[i] += row[i] * y;
            for j in 0..p {
                xtx.add_to(i, j, row[i] * row[j]);
            }
        }
    }
    solve_linear(&xtx, &xty)
}

/// Fit `y = a + b·x` and return `(a, b)`; `None` when degenerate (fewer than
/// two distinct x values).
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<(f64, f64)> {
    let xs: Vec<Vec<f64>> = x.iter().map(|&xi| vec![1.0, xi]).collect();
    least_squares(&xs, y).map(|beta| (beta[0], beta[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // x + y = 3 ; x - y = 1  →  x = 2, y = 1
        let a = DMat::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]]);
        let x = solve_linear(&a, &[3.0, 1.0]).expect("nonsingular");
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn needs_pivoting() {
        // zero on the diagonal forces a row swap
        let a = DMat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve_linear(&a, &[5.0, 7.0]).expect("nonsingular");
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn singular_returns_none() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(solve_linear(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn residual_check_random_system() {
        let n = 8;
        let mut a = DMat::zeros(n, n);
        let mut state = 42u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for r in 0..n {
            for c in 0..n {
                a.set(r, c, next());
            }
            a.add_to(r, r, 4.0); // diagonally dominant → nonsingular
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = solve_linear(&a, &b).expect("dominant matrix");
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn linear_fit_exact_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|&xi| 3.0 + 2.0 * xi).collect();
        let (a, b) = linear_fit(&x, &y).expect("fit");
        assert!((a - 3.0).abs() < 1e-10);
        assert!((b - 2.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_overdetermined() {
        // y = 1 + 0.5 x with symmetric noise that cancels exactly
        let xs = vec![
            vec![1.0, 0.0],
            vec![1.0, 2.0],
            vec![1.0, 2.0],
            vec![1.0, 4.0],
        ];
        let ys = vec![1.0, 1.9, 2.1, 3.0];
        let beta = least_squares(&xs, &ys).expect("fit");
        assert!((beta[0] - 1.0).abs() < 1e-10);
        assert!((beta[1] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn degenerate_fit_returns_none() {
        assert!(linear_fit(&[2.0, 2.0], &[1.0, 3.0]).is_none());
    }
}
