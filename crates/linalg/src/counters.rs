//! Injectable kernel profiling counters.
//!
//! The serving stack's telemetry wants to know how much *work* the sparse
//! kernels did — multiply-adds performed, scratch buffers grown vs reused —
//! not just how long calls took. [`KernelCounters`] is a process-wide sink
//! the kernels record into when (and only when) one has been installed:
//!
//! ```
//! use std::sync::Arc;
//! use hin_linalg::counters::{self, KernelCounters};
//!
//! let sink = Arc::new(KernelCounters::default());
//! counters::install(Arc::clone(&sink)); // once per process
//! // ... run kernels ...
//! let snap = sink.snapshot();
//! println!("{} multiply-adds", snap.total_flops());
//! ```
//!
//! With no sink installed the hot-path cost is a single relaxed boolean
//! load per kernel call — the kernels stay allocation- and branch-cheap.
//! Installation is once-per-process ([`install`] returns `false` on the
//! second attempt); a long-lived profiler shares the `Arc` and reads
//! [`KernelCounters::snapshot`] whenever it likes. Because the sink is
//! process-global, concurrent users (e.g. parallel tests) observe each
//! other's traffic: assert that counters *increased*, never their exact
//! values.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: OnceLock<Arc<KernelCounters>> = OnceLock::new();

/// Cumulative kernel work counters. All fields are monotone; share behind
/// an `Arc` and read via [`KernelCounters::snapshot`].
#[derive(Debug, Default)]
pub struct KernelCounters {
    /// `Csr::spgemm`/`spgemm_with` invocations.
    pub spgemm_calls: AtomicU64,
    /// Multiply-adds performed by those products (exact, from the sparsity
    /// structure: one per (A-nonzero, matching B-row-nonzero) pair).
    pub spgemm_flops: AtomicU64,
    /// `spvm`/`spvm_with` invocations (each link of a `spvm_chain` counts).
    pub spvm_calls: AtomicU64,
    /// Multiply-adds performed by those propagations.
    pub spvm_flops: AtomicU64,
    /// `ScatterScratch` accumulator growths (fresh allocation work).
    pub scratch_allocs: AtomicU64,
    /// `ScatterScratch` uses satisfied by an already-wide-enough buffer.
    pub scratch_reuses: AtomicU64,
    /// Contiguous output-row blocks processed by the row-parallel kernels
    /// (`Csr::spgemm_parallel` / `spmm_chain_parallel`): one per worker
    /// block, so a serial-degenerate call still counts 1.
    pub row_blocks: AtomicU64,
    /// Anchors propagated through the multi-anchor block kernel
    /// (`spmm_block_chain`): the batched alternative to one `spvm_chain`
    /// per anchor.
    pub block_anchors: AtomicU64,
}

impl KernelCounters {
    /// A plain-data copy of the current values.
    pub fn snapshot(&self) -> KernelCountersSnapshot {
        KernelCountersSnapshot {
            spgemm_calls: self.spgemm_calls.load(Ordering::Relaxed),
            spgemm_flops: self.spgemm_flops.load(Ordering::Relaxed),
            spvm_calls: self.spvm_calls.load(Ordering::Relaxed),
            spvm_flops: self.spvm_flops.load(Ordering::Relaxed),
            scratch_allocs: self.scratch_allocs.load(Ordering::Relaxed),
            scratch_reuses: self.scratch_reuses.load(Ordering::Relaxed),
            row_blocks: self.row_blocks.load(Ordering::Relaxed),
            block_anchors: self.block_anchors.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data view of [`KernelCounters`]; fields mirror the atomic struct.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCountersSnapshot {
    /// See [`KernelCounters::spgemm_calls`].
    pub spgemm_calls: u64,
    /// See [`KernelCounters::spgemm_flops`].
    pub spgemm_flops: u64,
    /// See [`KernelCounters::spvm_calls`].
    pub spvm_calls: u64,
    /// See [`KernelCounters::spvm_flops`].
    pub spvm_flops: u64,
    /// See [`KernelCounters::scratch_allocs`].
    pub scratch_allocs: u64,
    /// See [`KernelCounters::scratch_reuses`].
    pub scratch_reuses: u64,
    /// See [`KernelCounters::row_blocks`].
    pub row_blocks: u64,
    /// See [`KernelCounters::block_anchors`].
    pub block_anchors: u64,
}

impl KernelCountersSnapshot {
    /// Total multiply-adds across both kernel families.
    pub fn total_flops(&self) -> u64 {
        self.spgemm_flops + self.spvm_flops
    }
}

/// Install `sink` as the process-wide counter sink and enable recording.
/// Returns `false` (leaving the existing sink in place) if one was already
/// installed.
pub fn install(sink: Arc<KernelCounters>) -> bool {
    let fresh = SINK.set(sink).is_ok();
    if fresh {
        ENABLED.store(true, Ordering::Release);
    }
    fresh
}

/// The installed sink, if any.
pub fn installed() -> Option<Arc<KernelCounters>> {
    SINK.get().cloned()
}

/// Run `f` against the sink iff one is installed. The disabled path is one
/// relaxed load.
#[inline]
pub(crate) fn with(f: impl FnOnce(&KernelCounters)) {
    if ENABLED.load(Ordering::Relaxed) {
        if let Some(c) = SINK.get() {
            f(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{Csr, ScatterScratch};
    use crate::spvec::{spvm_chain_with, SparseVec};

    // NOTE: the sink is process-global and `cargo test` runs tests of this
    // crate in parallel inside one process, so these assertions are strictly
    // monotone (>=) — never exact — and both tests tolerate traffic from
    // neighbours.

    fn sink() -> Arc<KernelCounters> {
        let sink = Arc::new(KernelCounters::default());
        install(Arc::clone(&sink));
        installed().expect("a sink was just installed")
    }

    #[test]
    fn spgemm_records_calls_and_exact_flops() {
        let sink = sink();
        let before = sink.snapshot();
        let a = Csr::from_triplets(2, 2, [(0u32, 0u32, 1.0), (0, 1, 2.0), (1, 0, 3.0)]);
        let b = Csr::from_triplets(2, 2, [(0u32, 0u32, 1.0), (1, 1, 1.0)]);
        let _ = a.spgemm(&b);
        let after = sink.snapshot();
        assert!(after.spgemm_calls > before.spgemm_calls);
        // a has 3 nonzeros; row 0 of b has 1 nnz, row 1 has 1 nnz → 3 madds
        assert!(after.spgemm_flops >= before.spgemm_flops + 3);
        assert!(after.total_flops() >= before.total_flops() + 3);
    }

    #[test]
    fn spvm_and_scratch_record_work() {
        let sink = sink();
        let before = sink.snapshot();
        let m = Csr::from_triplets(3, 3, [(0u32, 1u32, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        let mut scratch = ScatterScratch::new();
        let v = SparseVec::unit(3, 0);
        let _ = spvm_chain_with(&v, &[&m, &m], &mut scratch);
        let _ = spvm_chain_with(&v, &[&m, &m], &mut scratch);
        let after = sink.snapshot();
        assert!(
            after.spvm_calls >= before.spvm_calls + 4,
            "2 chains × 2 links"
        );
        assert!(after.spvm_flops >= before.spvm_flops + 4, "1 madd per link");
        assert!(
            after.scratch_allocs > before.scratch_allocs,
            "first prepare grows the accumulator"
        );
        assert!(
            after.scratch_reuses >= before.scratch_reuses + 3,
            "later links reuse it"
        );
    }
}
