//! Multi-anchor sparse block propagation: k anchored rows through one
//! chain as a single short, fat sparse block.
//!
//! The anchored fast path ([`crate::spvec`]) propagates **one** sparse row
//! per query. When a micro-batch carries k anchored queries over the *same*
//! meta-path span, propagating them one at a time pays the per-chain
//! overhead k times: one scratch accumulator prepared per anchor per link,
//! one counter round-trip per anchor per link, and k cold passes over the
//! link matrix's rows. [`SparseBlock`] stacks the k anchor rows CSR-style
//! and [`spmm_block_chain`] pushes the whole block through each link in one
//! pass — per-link scatter state is prepared once and the link matrix's
//! rows stay hot across anchors — which wins even on one core by amortizing
//! chain overhead across the batch.
//!
//! Each row of the block runs the *exact* [`crate::spvec::spvm_with`]
//! scatter/sort/dedup/gather sequence, so every propagated row is
//! bit-identical to the row the per-anchor kernel (and therefore the
//! materialized matrix product) produces.

use crate::csr::{Csr, ScatterScratch};
use crate::spvec::SparseVec;

/// A stack of k sparse row vectors over one shared dimension — the carrier
/// of batched multi-anchor propagation.
///
/// Stored CSR-style (`indptr` over k rows, concatenated `indices`/`values`)
/// so a propagation pass writes one pair of growing arrays instead of k
/// separate vectors.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseBlock {
    dim: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseBlock {
    /// An empty block (zero rows) over dimension `dim`.
    pub fn empty(dim: usize) -> Self {
        Self {
            dim,
            indptr: vec![0],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Stack `rows` into one block.
    ///
    /// # Panics
    /// Panics when the rows disagree on dimension.
    pub fn from_rows(rows: &[SparseVec]) -> Self {
        let dim = rows.first().map(SparseVec::dim).unwrap_or(0);
        let mut block = Self::empty(dim);
        for row in rows {
            block.push_row(row);
        }
        block
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics when `row.dim()` differs from the block's dimension.
    pub fn push_row(&mut self, row: &SparseVec) {
        assert_eq!(
            row.dim(),
            self.dim,
            "SparseBlock::push_row: row dim {} vs block dim {}",
            row.dim(),
            self.dim
        );
        self.indices.extend_from_slice(row.indices());
        self.values.extend_from_slice(row.values());
        self.indptr.push(self.indices.len());
    }

    /// The block of unit rows `e_a` for each anchor — k anchored
    /// propagations about to start from scratch.
    ///
    /// # Panics
    /// Panics when an anchor is out of bounds.
    pub fn from_units(dim: usize, anchors: &[usize]) -> Self {
        let mut block = Self::empty(dim);
        for &a in anchors {
            assert!(
                a < dim,
                "SparseBlock::from_units: anchor {a} out of bounds for dim {dim}"
            );
            block.indices.push(a as u32);
            block.values.push(1.0);
            block.indptr.push(block.indices.len());
        }
        block
    }

    /// Number of rows (anchors) in the block.
    #[inline]
    pub fn k(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Shared dimension of every row.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total stored entries across all rows.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// `(indices, values)` of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.indptr[i], self.indptr[i + 1]);
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Copy row `i` out as a standalone [`SparseVec`].
    pub fn row_vec(&self, i: usize) -> SparseVec {
        let (idx, vals) = self.row(i);
        SparseVec::from_sorted_unchecked(self.dim, idx.to_vec(), vals.to_vec())
    }

    /// Split the block back into its rows.
    pub fn into_rows(self) -> Vec<SparseVec> {
        (0..self.k()).map(|i| self.row_vec(i)).collect()
    }

    /// Copy rows `range` out as a standalone block — the unit a parallel
    /// worker propagates independently.
    ///
    /// # Panics
    /// Panics when the range exceeds `k()`.
    pub fn slice_rows(&self, range: std::ops::Range<usize>) -> SparseBlock {
        let (lo, hi) = (self.indptr[range.start], self.indptr[range.end]);
        SparseBlock {
            dim: self.dim,
            indptr: self.indptr[range.start..=range.end]
                .iter()
                .map(|&p| p - lo)
                .collect(),
            indices: self.indices[lo..hi].to_vec(),
            values: self.values[lo..hi].to_vec(),
        }
    }

    /// Append every row of `other` after this block's rows — how parallel
    /// workers' partial blocks stitch back together in row order.
    ///
    /// # Panics
    /// Panics when the dimensions disagree.
    pub fn append(&mut self, other: &SparseBlock) {
        assert_eq!(
            other.dim, self.dim,
            "SparseBlock::append: block dim {} vs {}",
            other.dim, self.dim
        );
        let base = self.indices.len();
        self.indices.extend_from_slice(&other.indices);
        self.values.extend_from_slice(&other.values);
        self.indptr
            .extend(other.indptr[1..].iter().map(|&p| p + base));
    }
}

/// One link of a block propagation: every row of `block` through `m`, in
/// one pass sharing `scratch`. Each row runs the exact
/// [`crate::spvec::spvm_with`] kernel (scatter, sort, dedup, gather), so
/// row `i` of the result is bit-identical to `spvm_with(&block.row_vec(i),
/// m, ..)`.
///
/// # Panics
/// Panics when `block.dim() != m.nrows()`.
pub fn spmm_block_with(block: &SparseBlock, m: &Csr, scratch: &mut ScatterScratch) -> SparseBlock {
    assert_eq!(
        block.dim(),
        m.nrows(),
        "spmm_block: block dim {} vs matrix rows {}",
        block.dim(),
        m.nrows()
    );
    crate::counters::with(|c| {
        use std::sync::atomic::Ordering::Relaxed;
        let ops: usize = block.indices.iter().map(|&k| m.row_nnz(k as usize)).sum();
        // one spvm-equivalent propagation per row; the flops are the same
        // work the per-anchor kernel would have recorded
        c.spvm_calls.fetch_add(block.k() as u64, Relaxed);
        c.spvm_flops.fetch_add(ops as u64, Relaxed);
    });
    scratch.prepare(m.ncols());
    let ScatterScratch { acc, touched } = scratch;
    let mut out = SparseBlock::empty(m.ncols());
    for i in 0..block.k() {
        let (row_idx, row_vals) = block.row(i);
        for (&k, &vk) in row_idx.iter().zip(row_vals) {
            for (&c, &mv) in m
                .row_indices(k as usize)
                .iter()
                .zip(m.row_values(k as usize))
            {
                if acc[c as usize] == 0.0 {
                    touched.push(c);
                }
                acc[c as usize] += vk * mv;
            }
        }
        touched.sort_unstable();
        // mirror spvm_with/spgemm_with: a column whose partial sums
        // cancelled back to zero may be marked twice; emit it once
        touched.dedup();
        for &c in touched.iter() {
            out.indices.push(c);
            out.values.push(acc[c as usize]);
            acc[c as usize] = 0.0;
        }
        touched.clear();
        out.indptr.push(out.indices.len());
    }
    out
}

/// Propagate every row of `block` through the chain `M₁·M₂·…·Mₙ`,
/// allocating fresh scratch. The batched counterpart of k separate
/// [`crate::spvec::spvm_chain`] calls: one scratch, one pass per link.
///
/// # Panics
/// Panics on a dimension mismatch at any link.
pub fn spmm_block_chain(block: &SparseBlock, mats: &[&Csr]) -> SparseBlock {
    spmm_block_chain_with(block, mats, &mut ScatterScratch::new())
}

/// [`spmm_block_chain`] reusing a caller-owned [`ScatterScratch`].
///
/// # Panics
/// Panics on a dimension mismatch at any link.
pub fn spmm_block_chain_with(
    block: &SparseBlock,
    mats: &[&Csr],
    scratch: &mut ScatterScratch,
) -> SparseBlock {
    crate::counters::with(|c| {
        c.block_anchors
            .fetch_add(block.k() as u64, std::sync::atomic::Ordering::Relaxed);
    });
    let mut cur = None;
    for &m in mats {
        let next = spmm_block_with(cur.as_ref().unwrap_or(block), m, scratch);
        cur = Some(next);
    }
    cur.unwrap_or_else(|| block.clone())
}

/// [`spmm_block_chain`] with the anchor rows partitioned across
/// `config.threads()` workers via [`crate::pool`]. Rows of the block are
/// independent, so each worker runs the exact serial chain over its slice
/// and the partial blocks stitch back in row order — bit-identical to the
/// serial chain by construction. Partitioning is flop-balanced on the first
/// link (hub anchors don't pile onto one worker), and the work-stealing
/// dispatch applies when [`crate::pool::work_stealing`] is on.
///
/// # Panics
/// Panics on a dimension mismatch at any link.
pub fn spmm_block_chain_parallel(
    block: &SparseBlock,
    mats: &[&Csr],
    config: crate::pool::ParallelConfig,
) -> SparseBlock {
    let threads = config.threads().min(block.k()).max(1);
    if threads == 1 || mats.is_empty() {
        return spmm_block_chain(block, mats);
    }
    let first = mats[0];
    let weight = |r: usize| {
        let (idx, _) = block.row(r);
        idx.iter()
            .map(|&k| first.row_nnz(k as usize))
            .sum::<usize>()
    };
    let ranges = crate::pool::partition_blocks(block.k(), threads, weight);
    crate::counters::with(|c| {
        c.row_blocks
            .fetch_add(ranges.len() as u64, std::sync::atomic::Ordering::Relaxed);
    });
    let parts = crate::pool::run_partitioned(ranges, threads, |range| {
        spmm_block_chain(&block.slice_rows(range), mats)
    });
    let mut out = SparseBlock::empty(mats.last().map(|m| m.ncols()).unwrap_or(block.dim()));
    for part in &parts {
        out.append(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spvec::{spvm_chain, spvm_with};

    fn chain3() -> (Csr, Csr, Csr) {
        let a = Csr::from_triplets(
            4,
            3,
            [
                (0u32, 0u32, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 1.0),
                (3, 2, 5.0),
            ],
        );
        let b = Csr::from_triplets(
            3,
            5,
            [(0u32, 1u32, 2.0), (0, 4, 1.0), (1, 0, 1.0), (2, 3, 4.0)],
        );
        let c = Csr::from_triplets(
            5,
            2,
            [(0u32, 0u32, 1.0), (1, 1, 2.0), (3, 0, 3.0), (4, 1, 1.0)],
        );
        (a, b, c)
    }

    #[test]
    fn block_construction_round_trips() {
        let rows = vec![
            SparseVec::new(5, vec![0, 3], vec![1.0, -2.0]),
            SparseVec::zeros(5),
            SparseVec::new(5, vec![2], vec![7.0]),
        ];
        let block = SparseBlock::from_rows(&rows);
        assert_eq!(block.k(), 3);
        assert_eq!(block.dim(), 5);
        assert_eq!(block.nnz(), 3);
        assert_eq!(block.row(0), (&[0u32, 3][..], &[1.0, -2.0][..]));
        assert_eq!(block.row(1).0.len(), 0);
        assert_eq!(block.row_vec(2), rows[2]);
        assert_eq!(block.clone().into_rows(), rows);

        let units = SparseBlock::from_units(4, &[3, 0, 2]);
        assert_eq!(units.k(), 3);
        assert_eq!(units.row_vec(0), SparseVec::unit(4, 3));
        assert_eq!(units.row_vec(1), SparseVec::unit(4, 0));
        assert_eq!(SparseBlock::empty(9).k(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_anchor_panics() {
        let _ = SparseBlock::from_units(3, &[3]);
    }

    #[test]
    #[should_panic(expected = "row dim")]
    fn mismatched_row_dim_panics() {
        let mut block = SparseBlock::empty(4);
        block.push_row(&SparseVec::zeros(5));
    }

    #[test]
    fn one_link_matches_per_row_spvm_bitwise() {
        let (a, _, _) = chain3();
        let block = SparseBlock::from_units(4, &[0, 1, 2, 3]);
        let got = spmm_block_with(&block, &a, &mut ScatterScratch::new());
        for i in 0..4 {
            let single = spvm_with(&SparseVec::unit(4, i), &a, &mut ScatterScratch::new());
            assert_eq!(got.row(i).0, single.indices(), "row {i} structure");
            let same_bits = got
                .row(i)
                .1
                .iter()
                .zip(single.values())
                .all(|(g, w)| g.to_bits() == w.to_bits());
            assert!(same_bits, "row {i} values");
        }
    }

    #[test]
    fn chain_matches_per_anchor_propagation_bitwise() {
        let (a, b, c) = chain3();
        let anchors = [3usize, 0, 2];
        let block = SparseBlock::from_units(4, &anchors);
        let got = spmm_block_chain(&block, &[&a, &b, &c]);
        assert_eq!(got.k(), anchors.len());
        assert_eq!(got.dim(), 2);
        for (i, &x) in anchors.iter().enumerate() {
            let single = spvm_chain(&SparseVec::unit(4, x), &[&a, &b, &c]);
            assert_eq!(got.row(i).0, single.indices(), "anchor {x} structure");
            let same_bits = got
                .row(i)
                .1
                .iter()
                .zip(single.values())
                .all(|(g, w)| g.to_bits() == w.to_bits());
            assert!(same_bits, "anchor {x} values");
        }
    }

    #[test]
    fn slice_and_append_round_trip() {
        let rows = vec![
            SparseVec::new(5, vec![0, 3], vec![1.0, -2.0]),
            SparseVec::zeros(5),
            SparseVec::new(5, vec![2], vec![7.0]),
            SparseVec::new(5, vec![1, 4], vec![0.5, 9.0]),
        ];
        let block = SparseBlock::from_rows(&rows);
        let head = block.slice_rows(0..2);
        let tail = block.slice_rows(2..4);
        assert_eq!(head.k(), 2);
        assert_eq!(head.row_vec(0), rows[0]);
        assert_eq!(tail.row_vec(1), rows[3]);
        let mut stitched = SparseBlock::empty(5);
        stitched.append(&head);
        stitched.append(&tail);
        assert_eq!(stitched, block);
        // empty slices append as no-ops
        stitched.append(&block.slice_rows(1..1));
        assert_eq!(stitched, block);
    }

    #[test]
    #[should_panic(expected = "block dim")]
    fn appending_a_mismatched_dim_panics() {
        let mut block = SparseBlock::empty(4);
        block.append(&SparseBlock::empty(5));
    }

    #[test]
    fn parallel_chain_is_bit_identical_to_serial() {
        let (a, b, c) = chain3();
        let anchors = [3usize, 0, 2, 1, 3, 0];
        let block = SparseBlock::from_units(4, &anchors);
        let want = spmm_block_chain(&block, &[&a, &b, &c]);
        for threads in [1, 2, 4, 16] {
            let got = spmm_block_chain_parallel(
                &block,
                &[&a, &b, &c],
                crate::pool::ParallelConfig::with_threads(threads),
            );
            assert_eq!(got.indptr, want.indptr, "threads={threads}");
            assert_eq!(got.indices, want.indices, "threads={threads}");
            let same_bits = got
                .values
                .iter()
                .zip(&want.values)
                .all(|(g, w)| g.to_bits() == w.to_bits());
            assert!(same_bits, "threads={threads}");
        }
        // degenerate shapes route through the serial path
        let empty = SparseBlock::empty(4);
        assert_eq!(
            spmm_block_chain_parallel(&empty, &[&a], crate::pool::ParallelConfig::with_threads(4)),
            spmm_block_chain(&empty, &[&a])
        );
        assert_eq!(
            spmm_block_chain_parallel(&block, &[], crate::pool::ParallelConfig::with_threads(4)),
            block
        );
    }

    #[test]
    fn empty_chain_clones_the_block() {
        let block = SparseBlock::from_units(4, &[1, 2]);
        assert_eq!(spmm_block_chain(&block, &[]), block);
    }

    #[test]
    fn zero_row_block_propagates_to_zero_rows() {
        let (a, b, _) = chain3();
        let got = spmm_block_chain(&SparseBlock::empty(4), &[&a, &b]);
        assert_eq!(got.k(), 0);
        assert_eq!(got.dim(), 5);
    }

    #[test]
    fn cancellation_does_not_duplicate_entries_per_row() {
        // both rows drive acc[0] through 1 → 0 → 1; each must emit once
        let m = Csr::from_triplets(3, 2, [(0u32, 0u32, 1.0), (1, 0, -1.0), (2, 0, 1.0)]);
        let row = SparseVec::new(3, vec![0, 1, 2], vec![1.0, 1.0, 1.0]);
        let block = SparseBlock::from_rows(&[row.clone(), row]);
        let got = spmm_block_with(&block, &m, &mut ScatterScratch::new());
        for i in 0..2 {
            assert_eq!(got.row(i), (&[0u32][..], &[1.0][..]));
        }
    }
}
