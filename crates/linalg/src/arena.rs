//! Shared, aligned arena buffers backing zero-copy [`Csr`] views.
//!
//! The snapshot persistence layer (PR 4) decoded every matrix out of its
//! container into three fresh `Vec`s — O(decode) work per restore, linear
//! in graph size. The arena storage tier removes that cost: a snapshot
//! file is laid out as a directory of entry headers plus one 8-byte-
//! aligned data heap, read into a single [`ArenaBuf`], and every restored
//! matrix is a [`Csr`] *view* into that one shared allocation
//! ([`Csr::from_arena`]) — no per-matrix heap decode, no copies, failover
//! cost collapses from O(decode) to O(read).
//!
//! # Alignment and portability
//!
//! The on-disk heap stores `indptr` as `u64` LE, `indices` as `u32` LE and
//! `data` as `f64` LE bit patterns at 8-byte-aligned offsets. [`ArenaBuf`]
//! is backed by a `u64` allocation, so its base is always 8-byte aligned
//! and an aligned offset within it can be reinterpreted as `&[u64]`,
//! `&[u32]` or `&[f64]` directly. Interpreting the stored `u64` row
//! offsets as in-memory `usize` additionally requires a little-endian
//! 64-bit host ([`ZERO_COPY`]); on any other target [`Csr::from_arena`]
//! transparently falls back to decoding an owned copy — same matrices,
//! same API, just without the sharing.
//!
//! # Heap vs mapped backing
//!
//! An [`ArenaBuf`] owns its bytes one of two ways: a **heap** allocation
//! (`Box<[u64]>`, filled by a read) or a **memory-mapped file region**
//! ([`ArenaBuf::map_file`], direct `mmap` against the platform libc on
//! 64-bit unix). Both satisfy the same contracts — 8-byte-aligned base
//! (`mmap` returns page-aligned addresses), identical
//! [`ArenaBuf::as_bytes`] / [`ArenaBuf::as_words`] access — so everything
//! downstream of the `Arc<ArenaBuf>` seam ([`Csr::from_arena`], the v2
//! snapshot parser) is backing-oblivious. A mapped arena is read-only and
//! **demand-paged**: no byte of the file is copied or even faulted in
//! until a kernel actually dereferences it, which is what lets a restored
//! snapshot exceed physical RAM — the kernel pages matrix data in and out
//! as queries touch it. The region is unmapped when the last view into it
//! drops.
//!
//! # Storage stats
//!
//! Process-wide counters record how matrices were materialized from
//! persistence: [`view_restores`] (zero-copy views handed out),
//! [`heap_decodes`] (owned decodes, i.e. the v1 compat path or a
//! non-[`ZERO_COPY`] host), [`mapped_restores`] (files mapped via
//! [`ArenaBuf::map_file`]), and the live gauges [`arena_bytes`]
//! (heap-backed arena bytes resident) and [`arena_mapped_bytes`] (bytes of
//! file-backed mappings live — address-space reservation, *not* resident
//! heap) — each decremented when the last view into a buffer drops. They
//! are global: tests assert deltas, never absolute values, and the serving
//! layer exposes them as metrics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::codec::CodecError;
use crate::csr::Csr;

/// `true` when this target can reinterpret the arena heap in place:
/// little-endian, 64-bit (so the stored `u64` row offsets *are* `usize`).
/// When `false`, [`Csr::from_arena`] decodes owned copies instead.
pub const ZERO_COPY: bool = cfg!(all(target_endian = "little", target_pointer_width = "64"));

static ARENA_HEAP_BYTES: AtomicU64 = AtomicU64::new(0);
static ARENA_MAPPED_BYTES: AtomicU64 = AtomicU64::new(0);
static VIEW_RESTORES: AtomicU64 = AtomicU64::new(0);
static HEAP_DECODES: AtomicU64 = AtomicU64::new(0);
static MAPPED_RESTORES: AtomicU64 = AtomicU64::new(0);

/// Live gauge: bytes of **heap-backed** [`ArenaBuf`] allocations currently
/// resident in this process (snapshot arenas kept alive by the views into
/// them). Memory-mapped arenas are deliberately *not* counted here — a
/// mapping reserves address space, not heap; see [`arena_mapped_bytes`].
pub fn arena_bytes() -> u64 {
    ARENA_HEAP_BYTES.load(Ordering::Relaxed)
}

/// Live gauge: bytes of file-backed [`ArenaBuf`] mappings currently live
/// ([`ArenaBuf::map_file`]). This is mapped length — the address-space
/// reservation — not resident set size: the kernel pages the file in and
/// out on demand, so actual memory use can be far smaller.
pub fn arena_mapped_bytes() -> u64 {
    ARENA_MAPPED_BYTES.load(Ordering::Relaxed)
}

/// Cumulative count of matrices restored as zero-copy arena views.
pub fn view_restores() -> u64 {
    VIEW_RESTORES.load(Ordering::Relaxed)
}

/// Cumulative count of matrices decoded from persistence into owned
/// heap storage (the v1 codec path, or any arena restore on a
/// non-[`ZERO_COPY`] host).
pub fn heap_decodes() -> u64 {
    HEAP_DECODES.load(Ordering::Relaxed)
}

/// Cumulative count of snapshot files successfully memory-mapped
/// ([`ArenaBuf::map_file`]).
pub fn mapped_restores() -> u64 {
    MAPPED_RESTORES.load(Ordering::Relaxed)
}

pub(crate) fn note_heap_decode() {
    HEAP_DECODES.fetch_add(1, Ordering::Relaxed);
}

/// Minimal `mmap`/`munmap` FFI against the platform libc — no crates.io
/// dependency. Gated to 64-bit unix: the constants below are shared by
/// Linux, macOS and the BSDs, and a 64-bit `usize` matches `size_t` while
/// `i64` matches `off_t` (32-bit targets may use a 32-bit `off_t`, so they
/// take the portable read path instead).
#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::ffi::c_void;

    /// Pages are readable.
    pub const PROT_READ: i32 = 1;
    /// Private copy-on-write mapping (never written: the arena is
    /// immutable, so no page is ever actually copied).
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// `MAP_FAILED`: `(void*)-1`.
    pub fn failed(ptr: *mut c_void) -> bool {
        ptr as isize == -1
    }
}

/// A live read-only file mapping: base pointer plus the exact length
/// passed to `mmap` (what `munmap` must be given back).
#[cfg(all(unix, target_pointer_width = "64"))]
struct MappedRegion {
    ptr: *const u8,
    map_len: usize,
}

// Sound: the region is immutable for its whole lifetime (PROT_READ, never
// handed out mutably), so shared access from any thread only ever reads.
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Send for MappedRegion {}
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Sync for MappedRegion {}

#[cfg(all(unix, target_pointer_width = "64"))]
impl Drop for MappedRegion {
    fn drop(&mut self) {
        // A failing munmap leaks address space but cannot corrupt memory;
        // there is no good recovery, so ignore the result.
        unsafe {
            sys::munmap(self.ptr as *mut std::ffi::c_void, self.map_len);
        }
        ARENA_MAPPED_BYTES.fetch_sub(self.map_len as u64, Ordering::Relaxed);
    }
}

/// How an [`ArenaBuf`]'s bytes are owned.
enum Backing {
    /// An owned `u64` allocation (always 8-byte aligned), filled by a read.
    Heap(Box<[u64]>),
    /// A read-only file mapping (page-aligned base), paged on demand.
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped(MappedRegion),
}

/// An 8-byte-aligned, immutable-once-built byte buffer shared by every
/// view restored from one snapshot.
///
/// Heap-backed by a `u64` allocation (so the base address is always 8-byte
/// aligned regardless of the allocator's mood — the property that makes
/// reinterpreting aligned offsets as `&[f64]` / `&[u32]` / `&[usize]`
/// sound), or file-backed by a read-only `mmap` region
/// ([`ArenaBuf::map_file`], page-aligned and therefore more than 8-byte
/// aligned). Construction and drop maintain the [`arena_bytes`] /
/// [`arena_mapped_bytes`] gauges for their respective backings.
pub struct ArenaBuf {
    backing: Backing,
    /// Valid byte length (≤ the backing's capacity).
    len: usize,
}

impl std::fmt::Debug for ArenaBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArenaBuf")
            .field("len", &self.len)
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl ArenaBuf {
    /// A zeroed heap buffer of exactly `len` bytes, ready to be filled
    /// through [`ArenaBuf::as_mut_bytes`] (e.g. one `read_exact` of a
    /// whole snapshot file). `len` must come from a trusted source such as
    /// file metadata — this allocates eagerly.
    pub fn with_len(len: usize) -> ArenaBuf {
        let words = vec![0u64; len.div_ceil(8)].into_boxed_slice();
        ARENA_HEAP_BYTES.fetch_add(len as u64, Ordering::Relaxed);
        ArenaBuf {
            backing: Backing::Heap(words),
            len,
        }
    }

    /// Copy `bytes` into a fresh aligned heap buffer (one `memcpy`).
    pub fn from_bytes(bytes: &[u8]) -> ArenaBuf {
        let mut buf = ArenaBuf::with_len(bytes.len());
        buf.as_mut_bytes().copy_from_slice(bytes);
        buf
    }

    /// Memory-map `file` read-only as an arena buffer — the
    /// larger-than-RAM restore path. Nothing is read eagerly: pages fault
    /// in as views dereference them and the kernel evicts them under
    /// memory pressure, so the working set, not the file size, bounds
    /// resident memory. The mapping is released when the buffer (and every
    /// view holding its `Arc`) drops.
    ///
    /// Returns `Err` on non-64-bit-unix targets, for empty files (`mmap`
    /// rejects zero-length maps), and whenever the map call itself fails —
    /// callers fall back to the read path ([`ArenaBuf::with_len`] +
    /// `read_exact`), which yields bit-identical bytes.
    ///
    /// The file must not be truncated while mapped (accessing pages past a
    /// shrunken end raises `SIGBUS`) — the same trusted-source contract
    /// `with_len` places on its length argument. Checkpoint files are
    /// written to a temp sibling and atomically renamed, so a live
    /// snapshot file is never rewritten in place.
    #[cfg(all(unix, target_pointer_width = "64"))]
    pub fn map_file(file: &std::fs::File) -> std::io::Result<ArenaBuf> {
        use std::os::unix::io::AsRawFd;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| std::io::Error::other("file length exceeds usize"))?;
        if len == 0 {
            return Err(std::io::Error::other("cannot map an empty file"));
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if sys::failed(ptr) {
            return Err(std::io::Error::last_os_error());
        }
        ARENA_MAPPED_BYTES.fetch_add(len as u64, Ordering::Relaxed);
        MAPPED_RESTORES.fetch_add(1, Ordering::Relaxed);
        Ok(ArenaBuf {
            backing: Backing::Mapped(MappedRegion {
                ptr: ptr as *const u8,
                map_len: len,
            }),
            len,
        })
    }

    /// [`ArenaBuf::map_file`] on targets without the mmap FFI: always
    /// `Err`, so callers uniformly fall back to the read path.
    #[cfg(not(all(unix, target_pointer_width = "64")))]
    pub fn map_file(_file: &std::fs::File) -> std::io::Result<ArenaBuf> {
        Err(std::io::Error::other(
            "memory-mapped arenas require a 64-bit unix target",
        ))
    }

    /// `true` when the buffer is a demand-paged file mapping rather than a
    /// heap allocation.
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            Backing::Heap(_) => false,
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped(_) => true,
        }
    }

    /// Valid bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn base(&self) -> *const u8 {
        match &self.backing {
            Backing::Heap(words) => words.as_ptr() as *const u8,
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped(region) => region.ptr,
        }
    }

    /// The buffer's bytes (8-byte-aligned base on either backing).
    pub fn as_bytes(&self) -> &[u8] {
        // Sound: heap words loosen u64 → u8 alignment with every byte
        // initialized; a mapped region is PROT_READ file contents for the
        // lifetime of `self`.
        unsafe { std::slice::from_raw_parts(self.base(), self.len) }
    }

    /// Mutable access for filling the buffer after [`ArenaBuf::with_len`].
    ///
    /// # Panics
    /// Panics on a mapped buffer — file mappings are read-only; fill a
    /// heap buffer instead.
    pub fn as_mut_bytes(&mut self) -> &mut [u8] {
        match &mut self.backing {
            Backing::Heap(words) => unsafe {
                std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, self.len)
            },
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped(_) => panic!("ArenaBuf::as_mut_bytes: mapped arenas are read-only"),
        }
    }

    /// The buffer as little-endian `u64` words — the unit the arena
    /// checksum is computed over. Trailing bytes past the last full word
    /// (never present in a well-formed arena file) are ignored.
    pub fn as_words(&self) -> &[u64] {
        // Sound: both backings guarantee an 8-byte-aligned base, and only
        // whole words within `len` are exposed.
        unsafe { std::slice::from_raw_parts(self.base() as *const u64, self.len / 8) }
    }
}

impl Drop for ArenaBuf {
    fn drop(&mut self) {
        // Mapped regions decrement their own gauge in MappedRegion::drop.
        if let Backing::Heap(_) = &self.backing {
            ARENA_HEAP_BYTES.fetch_sub(self.len as u64, Ordering::Relaxed);
        }
    }
}

/// Where one matrix's arrays live inside an [`ArenaBuf`]: the decoded
/// form of one directory entry of the arena snapshot format. All offsets
/// are byte offsets from the buffer's base and must be 8-byte aligned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArenaEntry {
    /// Matrix rows.
    pub nrows: usize,
    /// Matrix columns.
    pub ncols: usize,
    /// Stored entries.
    pub nnz: usize,
    /// Byte offset of `(nrows + 1)` little-endian `u64` row offsets.
    pub indptr_off: usize,
    /// Byte offset of `nnz` little-endian `u32` column indices.
    pub indices_off: usize,
    /// Byte offset of `nnz` little-endian `f64` bit patterns.
    pub data_off: usize,
}

/// A validated window into a shared [`ArenaBuf`] serving as a [`Csr`]'s
/// backing storage. Constructed only by [`Csr::from_arena`], which checks
/// bounds, alignment, and every CSR structural invariant first — so the
/// raw-pointer accessors below are sound and the slices they return are
/// valid CSR arrays.
#[derive(Clone)]
pub(crate) struct ArenaView {
    buf: Arc<ArenaBuf>,
    entry: ArenaEntry,
}

impl ArenaView {
    #[inline]
    fn base(&self) -> *const u8 {
        self.buf.as_bytes().as_ptr()
    }

    /// Row offsets, reinterpreted in place. Requires [`ZERO_COPY`] (the
    /// constructor never builds a view otherwise).
    #[inline]
    pub(crate) fn indptr(&self) -> &[usize] {
        #[allow(clippy::assertions_on_constants)]
        {
            debug_assert!(ZERO_COPY);
        }
        unsafe {
            std::slice::from_raw_parts(
                self.base().add(self.entry.indptr_off) as *const usize,
                self.entry.nrows + 1,
            )
        }
    }

    #[inline]
    pub(crate) fn indices(&self) -> &[u32] {
        unsafe {
            std::slice::from_raw_parts(
                self.base().add(self.entry.indices_off) as *const u32,
                self.entry.nnz,
            )
        }
    }

    #[inline]
    pub(crate) fn data(&self) -> &[f64] {
        unsafe {
            std::slice::from_raw_parts(
                self.base().add(self.entry.data_off) as *const f64,
                self.entry.nnz,
            )
        }
    }

    /// Opaque identity of the backing buffer (pointer-derived): equal for
    /// views into the same arena.
    pub(crate) fn arena_id(&self) -> usize {
        Arc::as_ptr(&self.buf) as usize
    }
}

/// Bounds- and alignment-check one array of `count` elements of `elem`
/// bytes at byte offset `off`, returning its validated byte range.
fn check_array(
    buf_len: usize,
    field: &'static str,
    off: usize,
    count: usize,
    elem: usize,
) -> Result<(), CodecError> {
    if !off.is_multiple_of(8) {
        return Err(CodecError::Malformed(format!(
            "arena {field} offset {off} is not 8-byte aligned"
        )));
    }
    let bytes = count
        .checked_mul(elem)
        .and_then(|b| b.checked_add(off))
        .ok_or(CodecError::DimOverflow {
            field,
            value: count as u64,
        })?;
    if bytes > buf_len {
        return Err(CodecError::Malformed(format!(
            "arena {field} [{off}..{bytes}] exceeds buffer length {buf_len}"
        )));
    }
    Ok(())
}

impl Csr {
    /// Materialize one matrix out of a shared arena buffer.
    ///
    /// On a [`ZERO_COPY`] host this is allocation-free: the returned
    /// matrix is a *view* whose three arrays alias `buf` in place, and
    /// `buf` stays alive (via its `Arc`) as long as any view does. On
    /// other hosts the arrays are decoded into owned storage instead.
    ///
    /// Every structural invariant is validated before the matrix is
    /// handed out — offsets in bounds and 8-byte aligned, `indptr`
    /// starting at 0, non-decreasing and ending at `nnz`, column indices
    /// strictly increasing per row and `< ncols` — so a hostile or
    /// corrupt directory entry returns a typed [`CodecError`], never a
    /// panic and never a matrix other code could index out of bounds
    /// with.
    pub fn from_arena(buf: &Arc<ArenaBuf>, entry: ArenaEntry) -> Result<Csr, CodecError> {
        let len = buf.len();
        let indptr_len = entry.nrows.checked_add(1).ok_or(CodecError::DimOverflow {
            field: "nrows",
            value: entry.nrows as u64,
        })?;
        check_array(len, "indptr", entry.indptr_off, indptr_len, 8)?;
        check_array(len, "indices", entry.indices_off, entry.nnz, 4)?;
        check_array(len, "data", entry.data_off, entry.nnz, 8)?;

        let view = ArenaView {
            buf: Arc::clone(buf),
            entry,
        };
        if ZERO_COPY {
            // Validate through the view's own slices — the same bytes the
            // kernels will read.
            validate_csr(view.indptr(), view.indices(), entry.nnz, entry.ncols)?;
            VIEW_RESTORES.fetch_add(1, Ordering::Relaxed);
            Ok(Csr::from_arena_view(entry.nrows, entry.ncols, view))
        } else {
            // Portable fallback: decode owned copies from the LE bytes.
            let bytes = buf.as_bytes();
            let indptr: Vec<usize> = bytes[entry.indptr_off..]
                .chunks_exact(8)
                .take(indptr_len)
                .map(|c| {
                    let v = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
                    usize::try_from(v).map_err(|_| CodecError::DimOverflow {
                        field: "indptr entry",
                        value: v,
                    })
                })
                .collect::<Result<_, _>>()?;
            let indices: Vec<u32> = bytes[entry.indices_off..]
                .chunks_exact(4)
                .take(entry.nnz)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
                .collect();
            let data: Vec<f64> = bytes[entry.data_off..]
                .chunks_exact(8)
                .take(entry.nnz)
                .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8-byte chunk"))))
                .collect();
            validate_csr(&indptr, &indices, entry.nnz, entry.ncols)?;
            note_heap_decode();
            Ok(Csr::from_parts_unchecked(
                entry.nrows,
                entry.ncols,
                indptr,
                indices,
                data,
            ))
        }
    }
}

/// The CSR structural invariants every decoder enforces before a matrix
/// escapes: shared by the arena constructor above and usable by any other
/// storage front end.
pub(crate) fn validate_csr(
    indptr: &[usize],
    indices: &[u32],
    nnz: usize,
    ncols: usize,
) -> Result<(), CodecError> {
    if indptr.first() != Some(&0) {
        return Err(CodecError::Malformed("indptr[0] must be 0".to_string()));
    }
    if indptr.last() != Some(&nnz) {
        return Err(CodecError::Malformed(format!(
            "indptr[nrows] = {} but nnz = {nnz}",
            indptr.last().copied().unwrap_or(0)
        )));
    }
    if indptr.windows(2).any(|w| w[0] > w[1]) {
        return Err(CodecError::Malformed(
            "indptr must be non-decreasing".to_string(),
        ));
    }
    // first == 0, last == nnz and monotonicity bound every offset into
    // [0, nnz], so the row slicing below cannot go out of bounds.
    for row in 0..indptr.len() - 1 {
        let cols = &indices[indptr[row]..indptr[row + 1]];
        if cols.iter().any(|&c| (c as usize) >= ncols) {
            return Err(CodecError::Malformed(format!(
                "row {row} holds a column index >= ncols ({ncols})"
            )));
        }
        if cols.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CodecError::Malformed(format!(
                "row {row} column indices are not strictly increasing"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-build an arena holding one matrix: [indptr | data | indices].
    fn arena_of(m: &Csr) -> (Arc<ArenaBuf>, ArenaEntry) {
        let (indptr, indices, data) = m.parts();
        let indptr_off = 0;
        let data_off = (indptr.len() * 8).next_multiple_of(8);
        let indices_off = data_off + data.len() * 8;
        let total = (indices_off + indices.len() * 4).next_multiple_of(8);
        let mut buf = ArenaBuf::with_len(total);
        {
            let bytes = buf.as_mut_bytes();
            for (i, &p) in indptr.iter().enumerate() {
                bytes[indptr_off + i * 8..indptr_off + i * 8 + 8]
                    .copy_from_slice(&(p as u64).to_le_bytes());
            }
            for (i, &v) in data.iter().enumerate() {
                bytes[data_off + i * 8..data_off + i * 8 + 8]
                    .copy_from_slice(&v.to_bits().to_le_bytes());
            }
            for (i, &c) in indices.iter().enumerate() {
                bytes[indices_off + i * 4..indices_off + i * 4 + 4]
                    .copy_from_slice(&c.to_le_bytes());
            }
        }
        (
            Arc::new(buf),
            ArenaEntry {
                nrows: m.nrows(),
                ncols: m.ncols(),
                nnz: m.nnz(),
                indptr_off,
                indices_off,
                data_off,
            },
        )
    }

    fn sample() -> Csr {
        Csr::from_triplets(3, 3, [(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)])
    }

    #[test]
    fn view_equals_owned_and_shares_the_arena() {
        let m = sample();
        let (buf, entry) = arena_of(&m);
        let before = view_restores();
        let v = Csr::from_arena(&buf, entry).expect("valid arena entry");
        assert_eq!(v, m, "views compare equal to owned matrices by content");
        assert_eq!(v.nbytes(), m.nbytes(), "pricing is backing-independent");
        if ZERO_COPY {
            assert!(v.is_view());
            assert!(view_restores() > before);
            assert_eq!(v.arena_id(), Some(Arc::as_ptr(&buf) as usize));
            let w = Csr::from_arena(&buf, entry).expect("second view");
            assert_eq!(w.arena_id(), v.arena_id(), "one shared arena");
        }
    }

    #[test]
    fn arena_gauge_tracks_buffer_lifetime() {
        let m = sample();
        let (buf, entry) = arena_of(&m);
        let held = arena_bytes();
        let v = Csr::from_arena(&buf, entry).expect("valid");
        drop(buf);
        // the view keeps the arena alive
        assert_eq!(v.get(2, 1), 4.0);
        drop(v);
        assert!(
            arena_bytes() <= held,
            "dropping the last view releases the arena bytes"
        );
    }

    #[test]
    fn kernels_run_unchanged_on_views() {
        let m = sample();
        let (buf, entry) = arena_of(&m);
        let v = Csr::from_arena(&buf, entry).expect("valid");
        assert_eq!(v.spgemm(&v.transpose()), m.spgemm(&m.transpose()));
        assert_eq!(v.matvec(&[1.0, 2.0, 3.0]), m.matvec(&[1.0, 2.0, 3.0]));
        assert_eq!(v.row_sums(), m.row_sums());
    }

    #[test]
    fn mutation_promotes_a_view_to_owned() {
        let m = sample();
        let (buf, entry) = arena_of(&m);
        let mut v = Csr::from_arena(&buf, entry).expect("valid");
        v.scale(2.0);
        assert!(!v.is_view(), "copy-on-write promotion");
        assert_eq!(v.get(2, 1), 8.0);
        // the arena itself is untouched
        let again = Csr::from_arena(&buf, entry).expect("valid");
        assert_eq!(again.get(2, 1), 4.0);
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    #[test]
    fn mapped_arena_views_match_heap_views_and_split_the_gauges() {
        let m = sample();
        let (heap, entry) = arena_of(&m);
        let path = std::env::temp_dir().join(format!(
            "hin-arena-map-{}-{}.bin",
            std::process::id(),
            heap.len()
        ));
        std::fs::write(&path, heap.as_bytes()).unwrap();

        let heap_before = arena_bytes();
        let mapped_before = arena_mapped_bytes();
        let restores_before = mapped_restores();
        let file = std::fs::File::open(&path).unwrap();
        let mapped = Arc::new(ArenaBuf::map_file(&file).expect("map"));
        assert!(mapped.is_mapped());
        assert!(!heap.is_mapped());
        assert_eq!(mapped.as_bytes(), heap.as_bytes(), "same bytes either way");
        assert_eq!(mapped.as_words(), heap.as_words());
        assert_eq!(
            arena_bytes(),
            heap_before,
            "mapping must not count as heap arena bytes"
        );
        assert!(arena_mapped_bytes() >= mapped_before + mapped.len() as u64);
        assert!(mapped_restores() > restores_before);

        let v = Csr::from_arena(&mapped, entry).expect("valid mapped entry");
        assert_eq!(v, m, "mapped views equal owned matrices by content");
        if ZERO_COPY {
            assert!(v.is_view());
        }
        // the view keeps the mapping alive past the Arc
        drop(mapped);
        assert_eq!(v.get(2, 1), 4.0);
        drop(v);
        assert!(
            arena_mapped_bytes() <= mapped_before + heap.len() as u64,
            "dropping the last view unmaps the region"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapping_an_empty_file_fails_cleanly() {
        let path = std::env::temp_dir().join(format!("hin-arena-empty-{}.bin", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        let file = std::fs::File::open(&path).unwrap();
        assert!(ArenaBuf::map_file(&file).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    #[test]
    #[should_panic(expected = "read-only")]
    fn mutating_a_mapped_arena_panics() {
        let path = std::env::temp_dir().join(format!("hin-arena-ro-{}.bin", std::process::id()));
        std::fs::write(&path, [0u8; 16]).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let mut mapped = ArenaBuf::map_file(&file).expect("map");
        std::fs::remove_file(&path).ok();
        let _ = mapped.as_mut_bytes();
    }

    #[test]
    fn misaligned_and_out_of_bounds_offsets_are_rejected() {
        let m = sample();
        let (buf, entry) = arena_of(&m);
        for bad in [
            ArenaEntry {
                indptr_off: entry.indptr_off + 4, // misaligned
                ..entry
            },
            ArenaEntry {
                data_off: buf.len(), // data runs past the buffer
                ..entry
            },
            ArenaEntry {
                nnz: usize::MAX / 2, // length arithmetic must not overflow
                ..entry
            },
        ] {
            assert!(
                Csr::from_arena(&buf, bad).is_err(),
                "hostile entry {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn structural_invariants_are_enforced_on_view_construction() {
        let m = sample();
        // indptr not ending at nnz
        let (buf, entry) = arena_of(&m);
        let bad = ArenaEntry {
            nnz: m.nnz() - 1,
            ..entry
        };
        assert!(matches!(
            Csr::from_arena(&buf, bad),
            Err(CodecError::Malformed(_))
        ));
        // column index out of range: corrupt the indices array in place
        let (mut buf, entry) = {
            let (b, e) = arena_of(&m);
            (Arc::try_unwrap(b).expect("sole owner"), e)
        };
        buf.as_mut_bytes()[entry.indices_off] = 250;
        let buf = Arc::new(buf);
        assert!(matches!(
            Csr::from_arena(&buf, entry),
            Err(CodecError::Malformed(_))
        ));
    }
}
