//! Sparse vectors and sparse-vector × CSR propagation kernels.
//!
//! An anchored meta-path query reads **one row** of a commuting matrix:
//! `row_x(M₁·M₂·…·Mₙ) = eₓᵀ·M₁·M₂·…·Mₙ`. Evaluating that as a chain of
//! sparse-vector × matrix products ([`spvm_chain`]) costs the work of the
//! rows actually reached — typically orders of magnitude less than
//! materializing the full product chain — at the price of sharing nothing
//! with later queries. The query engine's cost-based execution-mode
//! planner (`hin-query`) chooses between the two per query;
//! [`spvm_flops_estimate`] / [`spvm_chain_flops_estimate`] are its cost
//! model for this side of the comparison.
//!
//! The kernels mirror `Csr::spgemm`'s inner loop exactly (dense-accumulator
//! scatter, touched-column gather in sorted order), so a propagated row is
//! **bit-identical** to the corresponding row of the left-to-right matrix
//! product — and identical to *any* evaluation order whenever the
//! arithmetic is exact (e.g. integer-valued weights, the common case for
//! path counts).

use crate::chain::MatSummary;
use crate::csr::{Csr, ScatterScratch};

/// A sparse `f64` vector: sorted indices with parallel values.
///
/// The row-vector counterpart of [`Csr`]: `indices` are strictly
/// increasing positions below `dim`, `values` their entries. Used as the
/// carrier of anchored-query row propagation.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseVec {
    dim: usize,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseVec {
    /// Build from parallel arrays.
    ///
    /// # Panics
    /// Panics when the arrays differ in length, an index is out of bounds,
    /// or indices are not strictly increasing.
    pub fn new(dim: usize, indices: Vec<u32>, values: Vec<f64>) -> Self {
        assert_eq!(
            indices.len(),
            values.len(),
            "SparseVec::new: {} indices vs {} values",
            indices.len(),
            values.len()
        );
        for w in indices.windows(2) {
            assert!(
                w[0] < w[1],
                "SparseVec::new: indices must be strictly increasing"
            );
        }
        if let Some(&last) = indices.last() {
            assert!(
                (last as usize) < dim,
                "SparseVec::new: index {last} out of bounds for dim {dim}"
            );
        }
        Self {
            dim,
            indices,
            values,
        }
    }

    /// Assemble from arrays whose invariants (sorted, in-bounds, parallel)
    /// the caller has already established — the kernels' output path, which
    /// produces sorted deduplicated indices by construction.
    pub(crate) fn from_sorted_unchecked(dim: usize, indices: Vec<u32>, values: Vec<f64>) -> Self {
        debug_assert_eq!(indices.len(), values.len());
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        Self {
            dim,
            indices,
            values,
        }
    }

    /// The empty vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self {
            dim,
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The unit vector `e_i`.
    ///
    /// # Panics
    /// Panics when `i >= dim`.
    pub fn unit(dim: usize, i: usize) -> Self {
        assert!(
            i < dim,
            "SparseVec::unit: index {i} out of bounds for {dim}"
        );
        Self {
            dim,
            indices: vec![i as u32],
            values: vec![1.0],
        }
    }

    /// Copy row `r` of a CSR matrix — the free first link of an anchored
    /// propagation (`eₓᵀ·M` *is* row `x` of `M`).
    pub fn from_csr_row(m: &Csr, r: usize) -> Self {
        let (idx, vals) = m.row(r);
        Self {
            dim: m.ncols(),
            indices: idx.to_vec(),
            values: vals.to_vec(),
        }
    }

    /// Dimension of the (mostly implicit) dense form.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// `true` when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Stored positions, strictly increasing.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Stored values, parallel to [`SparseVec::indices`].
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value at position `i`; zero when not stored.
    pub fn get(&self, i: usize) -> f64 {
        match self.indices.binary_search(&(i as u32)) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterate `(position, value)` over stored entries in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.indices
            .iter()
            .map(|&i| i as usize)
            .zip(self.values.iter().copied())
    }

    /// `Σ vᵢ²` — the self dot product, summed in index order. For a
    /// propagated half-path row `eᵧᵀ·H` this is the commuting-matrix
    /// diagonal `M[y][y]` of the palindromic path `H·Hᵀ`, which is how the
    /// anchored fast path computes PathSim normalizers without `M`.
    pub fn dot_self(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Sparse dot product `Σ uᵢ·vᵢ`, merge-joining the sorted index lists
    /// and summing in index order. With `u = eᵧᵀ·H` this evaluates the
    /// diagonal `eᵧᵀ·H·L·Hᵀ·eᵧ = (u·L)·uᵀ` of an **odd**-length
    /// palindromic path (middle matrix `L`) — the normalizer shape
    /// [`SparseVec::dot_self`] cannot express.
    ///
    /// # Panics
    /// Panics when the dimensions differ.
    pub fn dot(&self, other: &SparseVec) -> f64 {
        assert_eq!(
            self.dim, other.dim,
            "SparseVec::dot: dim {} vs {}",
            self.dim, other.dim
        );
        let mut sum = 0.0;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.indices.len() && j < other.indices.len() {
            match self.indices[i].cmp(&other.indices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    sum += self.values[i] * other.values[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        sum
    }

    /// Dense copy (tests and small-vector interop).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        for (i, v) in self.iter() {
            out[i] = v;
        }
        out
    }
}

/// Sparse row-vector × CSR product `vᵀ·M`, allocating fresh scratch.
///
/// # Panics
/// Panics when `v.dim() != m.nrows()`.
pub fn spvm(v: &SparseVec, m: &Csr) -> SparseVec {
    spvm_with(v, m, &mut ScatterScratch::new())
}

/// [`spvm`] reusing a caller-owned [`ScatterScratch`].
///
/// The kernel is `Csr::spgemm`'s inner loop restricted to one row: scatter
/// each reached row of `m` into a dense accumulator (tracking touched
/// columns), then gather the touched columns in sorted order. Identical
/// iteration and accumulation order means a propagated row is bit-identical
/// to the same row of the left-to-right materialized product.
///
/// # Panics
/// Panics when `v.dim() != m.nrows()`.
pub fn spvm_with(v: &SparseVec, m: &Csr, scratch: &mut ScatterScratch) -> SparseVec {
    assert_eq!(
        v.dim(),
        m.nrows(),
        "spvm: vector dim {} vs matrix rows {}",
        v.dim(),
        m.nrows()
    );
    crate::counters::with(|c| {
        use std::sync::atomic::Ordering::Relaxed;
        let ops: usize = v
            .indices
            .iter()
            .map(|&k| m.row_indices(k as usize).len())
            .sum();
        c.spvm_calls.fetch_add(1, Relaxed);
        c.spvm_flops.fetch_add(ops as u64, Relaxed);
    });
    scratch.prepare(m.ncols());
    let ScatterScratch { acc, touched } = scratch;
    for (k, vk) in v.iter() {
        for (&c, &mv) in m.row_indices(k).iter().zip(m.row_values(k)) {
            if acc[c as usize] == 0.0 {
                touched.push(c);
            }
            acc[c as usize] += vk * mv;
        }
    }
    touched.sort_unstable();
    // mirror spgemm_with: a column whose partial sums cancelled back to
    // zero may be marked twice; it must still emit exactly once
    touched.dedup();
    let mut indices = Vec::with_capacity(touched.len());
    let mut values = Vec::with_capacity(touched.len());
    for &c in touched.iter() {
        indices.push(c);
        values.push(acc[c as usize]);
        acc[c as usize] = 0.0;
    }
    touched.clear();
    SparseVec {
        dim: m.ncols(),
        indices,
        values,
    }
}

/// Propagate `v` through a chain of matrices: `vᵀ·M₁·M₂·…·Mₙ`, reusing one
/// scratch allocation across every link.
///
/// # Panics
/// Panics on a dimension mismatch at any link.
pub fn spvm_chain(v: &SparseVec, mats: &[&Csr]) -> SparseVec {
    spvm_chain_with(v, mats, &mut ScatterScratch::new())
}

/// [`spvm_chain`] reusing a caller-owned [`ScatterScratch`] — the form the
/// query engine drives when it propagates many candidates through one
/// half-path (PathSim normalizers).
///
/// # Panics
/// Panics on a dimension mismatch at any link.
pub fn spvm_chain_with(v: &SparseVec, mats: &[&Csr], scratch: &mut ScatterScratch) -> SparseVec {
    let mut cur = None;
    for &m in mats {
        let next = spvm_with(cur.as_ref().unwrap_or(v), m, scratch);
        cur = Some(next);
    }
    cur.unwrap_or_else(|| v.clone())
}

/// Expected multiply-adds of one `vᵀ·M` product with `vec_nnz` stored
/// entries: each entry scatters one row of `m`, and rows average
/// `nnz / rows` entries. The vector can't reach more rows than exist, so
/// `vec_nnz` is clamped to `m.rows`.
pub fn spvm_flops_estimate(vec_nnz: f64, m: &MatSummary) -> f64 {
    if m.rows == 0 {
        return 0.0;
    }
    vec_nnz.min(m.rows as f64) * (m.nnz as f64 / m.rows as f64)
}

/// Cost forecast of a whole [`spvm_chain`]: total expected flops plus the
/// expected nnz of the propagated vector after the last link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpvmChainEstimate {
    /// Expected multiply-adds across all links.
    pub flops: f64,
    /// Expected stored entries of the final vector (also the expected
    /// candidate count of an anchored query ending here).
    pub out_nnz: f64,
}

/// Estimate the cost of propagating a vector with `start_nnz` expected
/// entries through the chain, link by link: each link costs
/// [`spvm_flops_estimate`] and densifies the vector per
/// [`crate::spmm_nnz_estimate`] (a one-row product). This is the
/// sparse-row side of the execution-mode cost comparison in `hin-query`.
pub fn spvm_chain_flops_estimate(start_nnz: f64, mats: &[MatSummary]) -> SpvmChainEstimate {
    let mut flops = 0.0;
    let mut nnz = start_nnz;
    for m in mats {
        let link = spvm_flops_estimate(nnz, m);
        flops += link;
        nnz = crate::chain::spmm_nnz_estimate(1, m.cols, link);
    }
    SpvmChainEstimate {
        flops,
        out_nnz: nnz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> (Csr, Csr, Csr) {
        let a = Csr::from_triplets(
            4,
            3,
            [
                (0u32, 0u32, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 1.0),
                (3, 2, 5.0),
            ],
        );
        let b = Csr::from_triplets(
            3,
            5,
            [(0u32, 1u32, 2.0), (0, 4, 1.0), (1, 0, 1.0), (2, 3, 4.0)],
        );
        let c = Csr::from_triplets(
            5,
            2,
            [(0u32, 0u32, 1.0), (1, 1, 2.0), (3, 0, 3.0), (4, 1, 1.0)],
        );
        (a, b, c)
    }

    #[test]
    fn construction_and_accessors() {
        let v = SparseVec::new(6, vec![1, 4], vec![2.0, -1.0]);
        assert_eq!(v.dim(), 6);
        assert_eq!(v.nnz(), 2);
        assert!(!v.is_empty());
        assert_eq!(v.get(4), -1.0);
        assert_eq!(v.get(0), 0.0);
        assert_eq!(v.to_dense(), vec![0.0, 2.0, 0.0, 0.0, -1.0, 0.0]);
        assert_eq!(v.dot_self(), 5.0);
        assert!(SparseVec::zeros(3).is_empty());
        let e = SparseVec::unit(4, 2);
        assert_eq!(e.to_dense(), vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn sparse_dot_merge_joins() {
        let u = SparseVec::new(6, vec![0, 2, 5], vec![2.0, 3.0, -1.0]);
        let v = SparseVec::new(6, vec![1, 2, 5], vec![7.0, 4.0, 2.0]);
        assert_eq!(u.dot(&v), 3.0 * 4.0 - 2.0);
        assert_eq!(u.dot(&u), u.dot_self());
        assert_eq!(u.dot(&SparseVec::zeros(6)), 0.0);
    }

    #[test]
    #[should_panic(expected = "dim 3 vs 4")]
    fn mismatched_dot_panics() {
        let _ = SparseVec::zeros(3).dot(&SparseVec::zeros(4));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_indices_panic() {
        let _ = SparseVec::new(5, vec![3, 1], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_index_panics() {
        let _ = SparseVec::new(2, vec![2], vec![1.0]);
    }

    #[test]
    fn spvm_matches_dense_row_product() {
        let (a, _, _) = chain3();
        for r in 0..a.nrows() {
            let e = SparseVec::unit(a.nrows(), r);
            let got = spvm(&e, &a);
            assert_eq!(got.to_dense(), {
                let (idx, vals) = a.row(r);
                let mut dense = vec![0.0; a.ncols()];
                for (&c, &v) in idx.iter().zip(vals) {
                    dense[c as usize] = v;
                }
                dense
            });
        }
    }

    #[test]
    fn unit_propagation_is_bit_identical_to_matrix_row() {
        let (a, b, c) = chain3();
        let product = a.spgemm(&b).spgemm(&c);
        for x in 0..a.nrows() {
            let row = spvm_chain(&SparseVec::unit(a.nrows(), x), &[&a, &b, &c]);
            let (idx, vals) = product.row(x);
            assert_eq!(row.indices(), idx, "structure of row {x}");
            let same_bits = row
                .values()
                .iter()
                .zip(vals)
                .all(|(g, w)| g.to_bits() == w.to_bits());
            assert!(same_bits, "row {x}: {:?} vs {:?}", row.values(), vals);
        }
    }

    #[test]
    fn from_csr_row_seeds_the_chain() {
        let (a, b, c) = chain3();
        // seeding with row x of a ≡ propagating e_x through [a, b, c]
        for x in 0..a.nrows() {
            let via_unit = spvm_chain(&SparseVec::unit(a.nrows(), x), &[&a, &b, &c]);
            let via_seed = spvm_chain(&SparseVec::from_csr_row(&a, x), &[&b, &c]);
            assert_eq!(via_unit, via_seed);
        }
    }

    #[test]
    fn empty_chain_clones_the_input() {
        let v = SparseVec::new(3, vec![0, 2], vec![1.5, -2.0]);
        assert_eq!(spvm_chain(&v, &[]), v);
    }

    #[test]
    fn scratch_reuse_across_widths_stays_clean() {
        let (a, b, c) = chain3();
        let mut scratch = ScatterScratch::new();
        // widest matrix first, then narrower: stale accumulator state
        // would corrupt the second product
        let wide = spvm_with(&SparseVec::unit(3, 0), &b, &mut scratch);
        assert_eq!(wide.to_dense(), vec![0.0, 2.0, 0.0, 0.0, 1.0]);
        let narrow = spvm_with(&SparseVec::unit(4, 0), &a, &mut scratch);
        assert_eq!(narrow.to_dense(), vec![1.0, 0.0, 2.0]);
        let chained = spvm_chain_with(&SparseVec::unit(4, 0), &[&a, &b, &c], &mut scratch);
        assert_eq!(
            chained,
            spvm_chain(&SparseVec::unit(4, 0), &[&a, &b, &c]),
            "scratch-reusing chain must match the allocating one"
        );
    }

    #[test]
    fn cancellation_does_not_duplicate_entries() {
        // v·m where partial sums cancel acc[0] back to 0.0 mid-row, then
        // revive it: the entry must emit once, not twice
        let v = SparseVec::new(3, vec![0, 1, 2], vec![1.0, 1.0, 1.0]);
        let m = Csr::from_triplets(3, 2, [(0u32, 0u32, 1.0), (1, 0, -1.0), (2, 0, 1.0)]);
        let got = spvm(&v, &m);
        assert_eq!(got.indices(), &[0]);
        assert_eq!(got.values(), &[1.0]);
    }

    #[test]
    fn flops_estimates_track_density() {
        let m = MatSummary {
            rows: 10,
            cols: 20,
            nnz: 40,
        };
        // 2 entries × 4 avg row nnz
        assert_eq!(spvm_flops_estimate(2.0, &m), 8.0);
        // a vector can't reach more rows than exist
        assert_eq!(spvm_flops_estimate(1e9, &m), 40.0);
        assert_eq!(
            spvm_flops_estimate(
                3.0,
                &MatSummary {
                    rows: 0,
                    cols: 0,
                    nnz: 0
                }
            ),
            0.0
        );

        let chain = [
            MatSummary {
                rows: 100,
                cols: 50,
                nnz: 400,
            },
            MatSummary {
                rows: 50,
                cols: 1000,
                nnz: 5000,
            },
        ];
        let est = spvm_chain_flops_estimate(1.0, &chain);
        assert!(est.flops > 0.0);
        assert!(est.out_nnz > 0.0 && est.out_nnz <= 1000.0);
        // propagation from one anchor must be forecast far cheaper than
        // materializing the full 100×1000 product
        let full = crate::chain::spmm_chain_order(&chain).est_flops;
        assert!(est.flops < full, "lazy {} vs full {full}", est.flops);
    }
}
