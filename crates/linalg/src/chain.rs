//! Sparse matrix-chain products: cost model and multiplication-order
//! planning.
//!
//! Meta-path commuting matrices (and every algorithm built on them) are
//! chained sparse products `M₁·M₂·…·Mₙ`. Evaluation order changes the work
//! by orders of magnitude: associating through a small "waist" type first
//! keeps intermediates sparse, while naive left-to-right evaluation can
//! materialize a huge near-dense intermediate (e.g. the paper×paper
//! co-author overlap in a `P-A-P-V` path). This module provides
//!
//! * [`spmm_flops_estimate`] — the exact multiply-add count of one sparse
//!   product, cheaply computed from the operands' structure,
//! * [`spmm_nnz_estimate`] — the expected output nnz under a uniform
//!   scatter model, used for intermediates whose structure is unknown,
//! * [`spmm_chain_order`] — dynamic-programming order selection over a
//!   chain described by `(rows, cols, nnz)` summaries,
//! * [`spmm_chain`] — plan and execute a chain of concrete [`Csr`]s.

use std::borrow::Cow;
use std::fmt;

use crate::csr::Csr;

/// Shape-plus-sparsity summary of one chain operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatSummary {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Stored nonzeros.
    pub nnz: usize,
}

impl From<&Csr> for MatSummary {
    fn from(m: &Csr) -> Self {
        Self {
            rows: m.nrows(),
            cols: m.ncols(),
            nnz: m.nnz(),
        }
    }
}

/// Exact number of scalar multiply-adds `a.spgemm(b)` will perform:
/// `Σₖ nnz(col k of a) · nnz(row k of b)`, computed in `O(nnz(a))`.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn spmm_flops_estimate(a: &Csr, b: &Csr) -> f64 {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "spmm_flops_estimate: inner dimensions {}x{} * {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    let mut flops = 0.0;
    for r in 0..a.nrows() {
        for &k in a.row_indices(r) {
            flops += b.row_nnz(k as usize) as f64;
        }
    }
    flops
}

/// Expected nonzeros of a product with shape `rows × cols` that performs
/// `flops` multiply-adds, under a uniform scatter model: each multiply-add
/// hits a uniformly random output cell, so
/// `E[nnz] = rows·cols·(1 − exp(−flops / (rows·cols)))`.
///
/// Tight for unstructured sparsity; an overestimate when products
/// concentrate (which only makes the planner more conservative about
/// dense-ish intermediates).
pub fn spmm_nnz_estimate(rows: usize, cols: usize, flops: f64) -> f64 {
    let cells = (rows as f64) * (cols as f64);
    if cells <= 0.0 {
        return 0.0;
    }
    cells * (1.0 - (-flops / cells).exp())
}

/// A parenthesization of a chain product, as a binary tree over operand
/// indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanTree {
    /// Operand `i` used as-is.
    Leaf(usize),
    /// A pre-priced span `lo..=hi` supplied ready-made by the caller of
    /// [`spmm_chain_order_priced`] (e.g. a cached product).
    Span(usize, usize),
    /// Product of two sub-plans.
    Mul(Box<PlanTree>, Box<PlanTree>),
}

impl PlanTree {
    /// Leftmost..=rightmost operand indices covered by this subtree.
    pub fn span(&self) -> (usize, usize) {
        match self {
            PlanTree::Leaf(i) => (*i, *i),
            PlanTree::Span(lo, hi) => (*lo, *hi),
            PlanTree::Mul(l, r) => (l.span().0, r.span().1),
        }
    }

    /// `true` when the tree is the naive left-to-right order
    /// `((…(0·1)·2)·…)·n` (pre-priced spans count as atoms).
    pub fn is_left_deep(&self) -> bool {
        match self {
            PlanTree::Leaf(_) | PlanTree::Span(..) => true,
            PlanTree::Mul(l, r) => {
                matches!(**r, PlanTree::Leaf(_) | PlanTree::Span(..)) && l.is_left_deep()
            }
        }
    }
}

impl fmt::Display for PlanTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanTree::Leaf(i) => write!(f, "{i}"),
            PlanTree::Span(lo, hi) => write!(f, "[{lo}..{hi}]"),
            PlanTree::Mul(l, r) => write!(f, "({l}·{r})"),
        }
    }
}

/// Result of [`spmm_chain_order`]: the chosen order and its estimated cost.
#[derive(Clone, Debug)]
pub struct ChainPlan {
    /// The chosen parenthesization.
    pub tree: PlanTree,
    /// Estimated multiply-adds of the whole chain under the chosen order.
    pub est_flops: f64,
    /// Estimated multiply-adds of naive left-to-right evaluation, for
    /// comparison/diagnostics.
    pub left_to_right_flops: f64,
}

/// Pick a multiplication order for the chain `mats[0]·mats[1]·…` by
/// dynamic programming over `(rows, cols, nnz)` summaries.
///
/// Classic `O(n³)` matrix-chain DP, with the scalar-cost model replaced by
/// the sparse estimates above: the cost of joining two spans is
/// `nnz(left)·nnz(right)/inner_dim` expected multiply-adds, and span nnz
/// is propagated through [`spmm_nnz_estimate`].
///
/// # Panics
/// Panics when `mats` is empty or consecutive dimensions mismatch.
pub fn spmm_chain_order(mats: &[MatSummary]) -> ChainPlan {
    spmm_chain_order_priced(mats, |_, _| None)
}

/// [`spmm_chain_order`] with externally pre-priced spans.
///
/// `price(lo, hi)` returns `Some(nnz)` when the product of operands
/// `lo..=hi` is already available to the caller at zero cost (e.g. in a
/// commuting-matrix cache); such spans become [`PlanTree::Span`] leaves
/// with exact nnz, and the optimizer naturally leans on them. Only spans
/// of length ≥ 2 are priced — single operands are free leaves already.
///
/// # Panics
/// Panics when `mats` is empty or consecutive dimensions mismatch.
pub fn spmm_chain_order_priced(
    mats: &[MatSummary],
    price: impl Fn(usize, usize) -> Option<usize>,
) -> ChainPlan {
    assert!(!mats.is_empty(), "spmm_chain_order: empty chain");
    for w in mats.windows(2) {
        assert_eq!(
            w[0].cols, w[1].rows,
            "spmm_chain_order: dimension mismatch between consecutive operands"
        );
    }
    let n = mats.len();

    #[derive(Clone, Copy)]
    enum SpanKind {
        Leaf,
        Priced,
        Split(usize),
    }

    // cost[i][j], nnz_est[i][j], kind[i][j] over spans i..=j
    let mut cost = vec![vec![0.0f64; n]; n];
    let mut nnz_est = vec![vec![0.0f64; n]; n];
    let mut kind = vec![vec![SpanKind::Leaf; n]; n];
    for (i, m) in mats.iter().enumerate() {
        nnz_est[i][i] = m.nnz as f64;
    }
    for len in 2..=n {
        for i in 0..=n - len {
            let j = i + len - 1;
            if let Some(nnz) = price(i, j) {
                cost[i][j] = 0.0;
                nnz_est[i][j] = nnz as f64;
                kind[i][j] = SpanKind::Priced;
                continue;
            }
            let mut best = f64::INFINITY;
            let mut best_k = i;
            let mut best_nnz = 0.0;
            for k in i..j {
                let inner = mats[k].cols as f64;
                let join = if inner > 0.0 {
                    nnz_est[i][k] * nnz_est[k + 1][j] / inner
                } else {
                    0.0
                };
                let total = cost[i][k] + cost[k + 1][j] + join;
                if total < best {
                    best = total;
                    best_k = k;
                    best_nnz = spmm_nnz_estimate(mats[i].rows, mats[j].cols, join);
                }
            }
            cost[i][j] = best;
            nnz_est[i][j] = best_nnz;
            kind[i][j] = SpanKind::Split(best_k);
        }
    }

    // cost of the naive left-to-right order (no pre-priced spans) under
    // the same model
    let mut ltr = 0.0;
    let mut acc_nnz = mats[0].nnz as f64;
    for (k, m) in mats.iter().enumerate().skip(1) {
        let inner = mats[k - 1].cols as f64;
        let join = if inner > 0.0 {
            acc_nnz * m.nnz as f64 / inner
        } else {
            0.0
        };
        ltr += join;
        acc_nnz = spmm_nnz_estimate(mats[0].rows, m.cols, join);
    }

    fn build(kind: &[Vec<SpanKind>], i: usize, j: usize) -> PlanTree {
        if i == j {
            return PlanTree::Leaf(i);
        }
        match kind[i][j] {
            SpanKind::Priced => PlanTree::Span(i, j),
            SpanKind::Split(k) => {
                PlanTree::Mul(Box::new(build(kind, i, k)), Box::new(build(kind, k + 1, j)))
            }
            SpanKind::Leaf => unreachable!("multi-operand span marked leaf"),
        }
    }

    ChainPlan {
        tree: build(&kind, 0, n - 1),
        est_flops: cost[0][n - 1],
        left_to_right_flops: ltr,
    }
}

/// Multiply a chain of sparse matrices in the planner-chosen order.
///
/// One [`ScatterScratch`](crate::csr::ScatterScratch) (dense accumulator +
/// touched-column buffer) is shared across every product in the chain, so
/// an n-link chain pays for the accumulator allocation once instead of per
/// link.
///
/// # Panics
/// Panics when `mats` is empty or consecutive dimensions mismatch.
pub fn spmm_chain(mats: &[&Csr]) -> Csr {
    let plan = spmm_chain_order(
        &mats
            .iter()
            .map(|m| MatSummary::from(*m))
            .collect::<Vec<_>>(),
    );
    let mut scratch = crate::csr::ScatterScratch::new();
    eval_tree(mats, &plan.tree, &mut scratch).into_owned()
}

/// [`spmm_chain`] with every product executed by the row-parallel kernel
/// ([`Csr::spgemm_parallel`]) on `threads` workers.
///
/// The multiplication *order* is the same planner-chosen tree as the
/// serial chain, and the per-row kernel is shared, so the result is
/// bit-identical to [`spmm_chain`] at any thread count. `threads <= 1`
/// delegates to the serial chain outright (one shared scratch, no
/// spawning).
///
/// # Panics
/// Panics when `mats` is empty or consecutive dimensions mismatch.
pub fn spmm_chain_parallel(mats: &[&Csr], threads: usize) -> Csr {
    if threads <= 1 {
        return spmm_chain(mats);
    }
    let plan = spmm_chain_order(
        &mats
            .iter()
            .map(|m| MatSummary::from(*m))
            .collect::<Vec<_>>(),
    );
    eval_tree_parallel(mats, &plan.tree, threads).into_owned()
}

fn eval_tree<'a>(
    mats: &[&'a Csr],
    tree: &PlanTree,
    scratch: &mut crate::csr::ScatterScratch,
) -> Cow<'a, Csr> {
    match tree {
        PlanTree::Leaf(i) => Cow::Borrowed(mats[*i]),
        PlanTree::Span(..) => {
            unreachable!("spmm_chain plans without pre-priced spans")
        }
        PlanTree::Mul(l, r) => {
            let left = eval_tree(mats, l, scratch);
            let right = eval_tree(mats, r, scratch);
            Cow::Owned(left.spgemm_with(&right, scratch))
        }
    }
}

fn eval_tree_parallel<'a>(mats: &[&'a Csr], tree: &PlanTree, threads: usize) -> Cow<'a, Csr> {
    match tree {
        PlanTree::Leaf(i) => Cow::Borrowed(mats[*i]),
        PlanTree::Span(..) => {
            unreachable!("spmm_chain plans without pre-priced spans")
        }
        PlanTree::Mul(l, r) => {
            let left = eval_tree_parallel(mats, l, threads);
            let right = eval_tree_parallel(mats, r, threads);
            Cow::Owned(left.spgemm_parallel(&right, threads))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_block(rows: usize, cols: usize, every: usize) -> Csr {
        Csr::from_triplets(
            rows,
            cols,
            (0..rows).flat_map(|r| {
                (0..cols)
                    .filter(move |c| (r + c) % every == 0)
                    .map(move |c| (r as u32, c as u32, 1.0 + (r * cols + c) as f64 % 3.0))
            }),
        )
    }

    #[test]
    fn flops_estimate_is_exact_work_count() {
        let a = dense_block(6, 5, 2);
        let b = dense_block(5, 7, 3);
        // brute force: for each k, (col-nnz of a at k) * (row-nnz of b at k)
        let mut expect = 0usize;
        for k in 0..5 {
            let col_nnz = (0..6).filter(|&r| a.get(r, k) != 0.0).count();
            expect += col_nnz * b.row_nnz(k);
        }
        assert_eq!(spmm_flops_estimate(&a, &b), expect as f64);
    }

    #[test]
    fn nnz_estimate_bounds() {
        // zero flops → zero output
        assert_eq!(spmm_nnz_estimate(10, 10, 0.0), 0.0);
        // huge flops saturate at the full shape
        let est = spmm_nnz_estimate(10, 10, 1e9);
        assert!((est - 100.0).abs() < 1e-6);
        // small flops ≈ flops (few collisions)
        let est = spmm_nnz_estimate(1000, 1000, 50.0);
        assert!((est - 50.0).abs() < 0.5, "{est}");
    }

    #[test]
    fn planner_prefers_small_waist_first() {
        // A: 1000×50, B: 50×1000, C: 1000×5.
        // Left-deep materializes the 1000×1000 A·B; right-first goes
        // through the 50×5 waist. The planner must pick the right-first
        // association.
        let chain = [
            MatSummary {
                rows: 1000,
                cols: 50,
                nnz: 5000,
            },
            MatSummary {
                rows: 50,
                cols: 1000,
                nnz: 5000,
            },
            MatSummary {
                rows: 1000,
                cols: 5,
                nnz: 1000,
            },
        ];
        let plan = spmm_chain_order(&chain);
        assert!(!plan.tree.is_left_deep(), "chose {}", plan.tree);
        assert_eq!(plan.tree.to_string(), "(0·(1·2))");
        assert!(
            plan.est_flops < plan.left_to_right_flops / 5.0,
            "estimated {} vs left-to-right {}",
            plan.est_flops,
            plan.left_to_right_flops
        );
    }

    #[test]
    fn planner_keeps_left_deep_when_optimal() {
        // A tiny left operand collapses everything immediately, while the
        // right pair is a big×big product: left-deep is optimal.
        let chain = [
            MatSummary {
                rows: 5,
                cols: 100,
                nnz: 200,
            },
            MatSummary {
                rows: 100,
                cols: 80,
                nnz: 2000,
            },
            MatSummary {
                rows: 80,
                cols: 70,
                nnz: 2000,
            },
        ];
        let plan = spmm_chain_order(&chain);
        assert!(plan.tree.is_left_deep(), "chose {}", plan.tree);
        assert_eq!(plan.tree.span(), (0, 2));
    }

    #[test]
    fn priced_spans_become_atoms() {
        // Same skewed chain as above, but the expensive middle-out pair is
        // pre-priced (cached): the plan must use it as a leaf at zero cost.
        let chain = [
            MatSummary {
                rows: 1000,
                cols: 50,
                nnz: 5000,
            },
            MatSummary {
                rows: 50,
                cols: 1000,
                nnz: 5000,
            },
            MatSummary {
                rows: 1000,
                cols: 5,
                nnz: 1000,
            },
        ];
        let plan = spmm_chain_order_priced(&chain, |lo, hi| (lo == 1 && hi == 2).then_some(250));
        assert_eq!(
            plan.tree,
            PlanTree::Mul(Box::new(PlanTree::Leaf(0)), Box::new(PlanTree::Span(1, 2))),
            "got {}",
            plan.tree
        );
        assert_eq!(plan.tree.span(), (0, 2));
        assert!(plan.tree.is_left_deep(), "span atoms count as leaves");
        // only the A·(span) join is paid
        let unpriced = spmm_chain_order(&chain);
        assert!(plan.est_flops < unpriced.est_flops);
    }

    #[test]
    fn chain_result_matches_naive_order() {
        let a = dense_block(8, 6, 2);
        let b = dense_block(6, 9, 3);
        let c = dense_block(9, 4, 2);
        let d = dense_block(4, 7, 1);
        let planned = spmm_chain(&[&a, &b, &c, &d]);
        let naive = a.spgemm(&b).spgemm(&c).spgemm(&d);
        assert_eq!(planned.nrows(), 8);
        assert_eq!(planned.ncols(), 7);
        assert!(planned.to_dense().max_abs_diff(&naive.to_dense()) < 1e-9);
    }

    #[test]
    fn singleton_chain_is_identity() {
        let a = dense_block(4, 3, 2);
        let plan = spmm_chain_order(&[MatSummary::from(&a)]);
        assert_eq!(plan.tree, PlanTree::Leaf(0));
        assert_eq!(plan.est_flops, 0.0);
        assert_eq!(spmm_chain(&[&a]), a);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_chain_panics() {
        let _ = spmm_chain_order(&[
            MatSummary {
                rows: 3,
                cols: 4,
                nnz: 2,
            },
            MatSummary {
                rows: 5,
                cols: 2,
                nnz: 2,
            },
        ]);
    }
}
