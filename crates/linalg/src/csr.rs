//! Compressed sparse row matrices.
//!
//! [`Csr`] doubles as the adjacency representation for every network in the
//! workspace (`hin-core` builds typed relations out of it) and as a numeric
//! sparse matrix for the linear-algebra-flavoured algorithms (PathSim
//! commuting matrices, PageRank transition matrices).

use crate::arena::ArenaView;
use crate::dense::DMat;

/// Reusable dense-accumulator scratch for the scatter/gather sparse
/// kernels ([`Csr::spgemm_with`], [`crate::spvec::spvm_with`]).
///
/// Both kernels expand one sparse row (or vector) into a dense accumulator,
/// tracking which columns were touched, then gather the touched columns
/// back out in sorted order. The accumulator is as wide as the widest
/// operand seen, so chained products (`spmm_chain`, `spvm_chain`) reuse one
/// allocation across every link instead of paying a fresh `vec![0.0; ncols]`
/// per product.
///
/// Invariant between uses: `acc` is all zeros and `touched` is empty —
/// every kernel restores this as it gathers, so a scratch can be shared
/// freely across calls (but not across threads).
#[derive(Debug, Default)]
pub struct ScatterScratch {
    pub(crate) acc: Vec<f64>,
    pub(crate) touched: Vec<u32>,
}

impl ScatterScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow the accumulator to at least `ncols` zeroed slots.
    pub(crate) fn prepare(&mut self, ncols: usize) {
        if self.acc.len() < ncols {
            self.acc.resize(ncols, 0.0);
            crate::counters::with(|c| {
                c.scratch_allocs
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        } else {
            crate::counters::with(|c| {
                c.scratch_reuses
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        }
    }
}

/// A compressed sparse row `f64` matrix.
///
/// Row `i`'s nonzeros live in `indices[indptr[i]..indptr[i+1]]` (column ids)
/// and `data[indptr[i]..indptr[i+1]]` (values). Column indices within a row
/// are strictly increasing; duplicate triplets are merged by summation at
/// construction time.
///
/// # Storage: owned or view
///
/// The three arrays live either in matrix-owned `Vec`s (every construction
/// path in this module) or as a zero-copy *view* into a shared, aligned
/// [`crate::arena::ArenaBuf`] ([`Csr::from_arena`] — how snapshot restores
/// avoid per-matrix decodes). Every accessor and kernel reads through
/// the `indptr`/`indices`/`data` accessors, so the two backings are
/// observationally identical: equal content compares equal ([`PartialEq`]
/// is by content, not by backing), [`Csr::nbytes`] prices both the same,
/// and the rare in-place mutators ([`Csr::scale`], [`Csr::scale_rows`])
/// promote a view to owned storage copy-on-write first.
#[derive(Clone)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    storage: Storage,
}

/// The own-or-view backing of a [`Csr`].
#[derive(Clone)]
enum Storage {
    Owned {
        indptr: Vec<usize>,
        indices: Vec<u32>,
        data: Vec<f64>,
    },
    View(ArenaView),
}

impl std::fmt::Debug for Csr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Csr")
            .field("nrows", &self.nrows)
            .field("ncols", &self.ncols)
            .field("nnz", &self.nnz())
            .field("backing", &if self.is_view() { "view" } else { "owned" })
            .field("indptr", &self.indptr())
            .field("indices", &self.indices())
            .field("data", &self.data())
            .finish()
    }
}

impl PartialEq for Csr {
    /// Content equality: shape and the three arrays, regardless of which
    /// backing holds them — a restored view equals the owned matrix it
    /// was snapshotted from.
    fn eq(&self, other: &Self) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.indptr() == other.indptr()
            && self.indices() == other.indices()
            && self.data() == other.data()
    }
}

impl Csr {
    /// Row offsets: `indptr[i]..indptr[i+1]` spans row `i`'s entries.
    #[inline]
    pub(crate) fn indptr(&self) -> &[usize] {
        match &self.storage {
            Storage::Owned { indptr, .. } => indptr,
            Storage::View(v) => v.indptr(),
        }
    }

    /// All stored column indices, concatenated row-major.
    #[inline]
    pub(crate) fn indices(&self) -> &[u32] {
        match &self.storage {
            Storage::Owned { indices, .. } => indices,
            Storage::View(v) => v.indices(),
        }
    }

    /// All stored values, parallel to [`Csr::indices`].
    #[inline]
    pub(crate) fn data(&self) -> &[f64] {
        match &self.storage {
            Storage::Owned { data, .. } => data,
            Storage::View(v) => v.data(),
        }
    }

    /// `true` when the arrays are a zero-copy view into a shared arena
    /// buffer rather than matrix-owned `Vec`s.
    #[inline]
    pub fn is_view(&self) -> bool {
        matches!(self.storage, Storage::View(_))
    }

    /// Opaque identity of the arena buffer a view-backed matrix aliases
    /// (`None` for owned storage). Two matrices restored from the same
    /// snapshot share one arena and report equal ids — the property the
    /// zero-decode warm-restore tests assert.
    pub fn arena_id(&self) -> Option<usize> {
        match &self.storage {
            Storage::Owned { .. } => None,
            Storage::View(v) => Some(v.arena_id()),
        }
    }

    /// Rebind a view to owned storage (copy once); no-op when already
    /// owned. The write path of copy-on-write mutation.
    fn make_owned(&mut self) {
        if let Storage::View(v) = &self.storage {
            self.storage = Storage::Owned {
                indptr: v.indptr().to_vec(),
                indices: v.indices().to_vec(),
                data: v.data().to_vec(),
            };
        }
    }

    /// Mutable values, promoting a view to owned storage first.
    fn data_mut(&mut self) -> &mut [f64] {
        self.make_owned();
        match &mut self.storage {
            Storage::Owned { data, .. } => data,
            Storage::View(_) => unreachable!("make_owned leaves Owned storage"),
        }
    }

    /// Assemble a view-backed matrix over an already-validated arena
    /// window (only [`Csr::from_arena`] calls this, after checking every
    /// CSR invariant).
    pub(crate) fn from_arena_view(nrows: usize, ncols: usize, view: ArenaView) -> Self {
        Self {
            nrows,
            ncols,
            storage: Storage::View(view),
        }
    }

    /// Empty matrix with the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            storage: Storage::Owned {
                indptr: vec![0; nrows + 1],
                indices: Vec::new(),
                data: Vec::new(),
            },
        }
    }

    /// Build from `(row, col, value)` triplets. Duplicates are summed and
    /// explicit zeros produced by cancellation are kept (callers that care
    /// can [`Csr::prune`]).
    ///
    /// # Panics
    /// Panics when an index is out of bounds.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: impl IntoIterator<Item = (u32, u32, f64)>,
    ) -> Self {
        let mut trips: Vec<(u32, u32, f64)> = triplets.into_iter().collect();
        for &(r, c, _) in &trips {
            assert!(
                (r as usize) < nrows && (c as usize) < ncols,
                "Csr::from_triplets: index ({r},{c}) out of bounds for {nrows}x{ncols}"
            );
        }
        trips.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut indptr = vec![0usize; nrows + 1];
        let mut indices = Vec::with_capacity(trips.len());
        let mut data: Vec<f64> = Vec::with_capacity(trips.len());
        for (r, c, v) in trips {
            if let (Some(&last_c), true) = (indices.last(), indptr[r as usize + 1] > 0) {
                // merge a duplicate of the previous entry in the same row
                if last_c == c && indices.len() > indptr[r as usize] {
                    *data.last_mut().expect("data tracks indices") += v;
                    continue;
                }
            }
            indices.push(c);
            data.push(v);
            indptr[r as usize + 1] = indices.len();
        }
        // turn per-row end offsets into a proper prefix scan
        for i in 1..=nrows {
            if indptr[i] == 0 {
                indptr[i] = indptr[i - 1];
            }
        }
        Self {
            nrows,
            ncols,
            storage: Storage::Owned {
                indptr,
                indices,
                data,
            },
        }
    }

    /// Build an unweighted matrix (all values 1.0) from `(row, col)` pairs.
    pub fn from_edges(
        nrows: usize,
        ncols: usize,
        edges: impl IntoIterator<Item = (u32, u32)>,
    ) -> Self {
        Self::from_triplets(nrows, ncols, edges.into_iter().map(|(r, c)| (r, c, 1.0)))
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices().len()
    }

    /// Heap bytes this matrix logically occupies: the `indptr`, `indices`
    /// and `data` arrays at their stored lengths (excess `Vec` capacity is
    /// ignored). This is the cost model used by byte-budgeted caches of
    /// commuting matrices. Deliberately backing-independent: a view-backed
    /// matrix prices the same as its owned twin, so cache budgets and
    /// snapshot export budgets mean the same thing on either side of a
    /// restore.
    #[inline]
    pub fn nbytes(&self) -> usize {
        (self.nrows + 1) * std::mem::size_of::<usize>()
            + self.nnz() * std::mem::size_of::<u32>()
            + self.nnz() * std::mem::size_of::<f64>()
    }

    /// Column indices of row `r`.
    #[inline]
    pub fn row_indices(&self, r: usize) -> &[u32] {
        let indptr = self.indptr();
        &self.indices()[indptr[r]..indptr[r + 1]]
    }

    /// Values of row `r`, parallel to [`Csr::row_indices`].
    #[inline]
    pub fn row_values(&self, r: usize) -> &[f64] {
        let indptr = self.indptr();
        &self.data()[indptr[r]..indptr[r + 1]]
    }

    /// `(indices, values)` of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        (self.row_indices(r), self.row_values(r))
    }

    /// Iterate `(row, col, value)` over all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            self.row_indices(r)
                .iter()
                .zip(self.row_values(r))
                .map(move |(&c, &v)| (r as u32, c, v))
        })
    }

    /// Value at `(r, c)`; zero when not stored. Binary search within the row.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let row = self.row_indices(r);
        match row.binary_search(&(c as u32)) {
            Ok(pos) => self.row_values(r)[pos],
            Err(_) => 0.0,
        }
    }

    /// Number of stored entries in row `r` (out-degree when used as an
    /// adjacency matrix).
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        let indptr = self.indptr();
        indptr[r + 1] - indptr[r]
    }

    /// Sum of values in row `r` (weighted out-degree).
    pub fn row_sum(&self, r: usize) -> f64 {
        self.row_values(r).iter().sum()
    }

    /// Vector of all row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.nrows).map(|r| self.row_sum(r)).collect()
    }

    /// Sum of all stored values.
    pub fn total(&self) -> f64 {
        self.data().iter().sum()
    }

    /// Transpose (CSR of the same data with rows and columns swapped).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in self.indices() {
            counts[c as usize + 1] += 1;
        }
        for i in 1..=self.ncols {
            counts[i] += counts[i - 1];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut data = vec![0.0; self.nnz()];
        let mut next = counts;
        for r in 0..self.nrows {
            for (&c, &v) in self.row_indices(r).iter().zip(self.row_values(r)) {
                let pos = next[c as usize];
                indices[pos] = r as u32;
                data[pos] = v;
                next[c as usize] += 1;
            }
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            storage: Storage::Owned {
                indptr,
                indices,
                data,
            },
        }
    }

    /// `y = self * x`.
    ///
    /// # Panics
    /// Panics when `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "Csr::matvec: dimension mismatch");
        let mut y = vec![0.0; self.nrows];
        self.matvec_into(x, &mut y);
        y
    }

    /// `y ← self * x` without allocating.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (&c, &v) in self.row_indices(r).iter().zip(self.row_values(r)) {
                acc += v * x[c as usize];
            }
            *yr = acc;
        }
    }

    /// `y = selfᵀ * x` computed without materializing the transpose.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "Csr::matvec_t: dimension mismatch");
        let mut y = vec![0.0; self.ncols];
        for r in 0..self.nrows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            for (&c, &v) in self.row_indices(r).iter().zip(self.row_values(r)) {
                y[c as usize] += v * xr;
            }
        }
        y
    }

    /// Sparse × sparse product `self * rhs` using a dense accumulator row.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn spgemm(&self, rhs: &Csr) -> Csr {
        self.spgemm_with(rhs, &mut ScatterScratch::new())
    }

    /// [`Csr::spgemm`] reusing a caller-owned [`ScatterScratch`], so chained
    /// products ([`crate::spmm_chain`]) pay for the accumulator once instead
    /// of per link.
    ///
    /// Output `indices`/`data` capacity is pre-reserved from
    /// [`crate::spmm_nnz_estimate`] (clamped by the exact flop count, which
    /// bounds the true nnz from above), so rows append without the repeated
    /// doubling reallocations an unsized `Vec` pays on large products.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn spgemm_with(&self, rhs: &Csr, scratch: &mut ScatterScratch) -> Csr {
        assert_eq!(
            self.ncols, rhs.nrows,
            "Csr::spgemm: inner dimensions {}x{} * {}x{}",
            self.nrows, self.ncols, rhs.nrows, rhs.ncols
        );
        let flops = crate::chain::spmm_flops_estimate(self, rhs);
        // `flops` is the exact multiply-add count for this product (one per
        // (A-nonzero, matching B-row-nonzero) pair), so it doubles as the
        // profiling figure.
        crate::counters::with(|c| {
            use std::sync::atomic::Ordering::Relaxed;
            c.spgemm_calls.fetch_add(1, Relaxed);
            c.spgemm_flops.fetch_add(flops as u64, Relaxed);
        });
        let (row_ends, indices, data) = self.spgemm_rows(rhs, 0..self.nrows, flops, scratch);
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        indptr.push(0usize);
        indptr.extend(row_ends);
        Csr {
            nrows: self.nrows,
            ncols: rhs.ncols,
            storage: Storage::Owned {
                indptr,
                indices,
                data,
            },
        }
    }

    /// The scatter/gather row kernel over output rows `rows` — the one
    /// per-row loop both the serial product ([`Csr::spgemm_with`]) and the
    /// row-parallel product ([`Csr::spgemm_parallel`]) execute, so the two
    /// are bit-identical by construction. Returns per-row end offsets
    /// (relative to the block) plus the block's `indices`/`data` arrays.
    ///
    /// `flops_hint` bounds the reservation: the exact multiply-add count of
    /// the rows in question (or any upper bound — it is clamped by the
    /// density estimate either way).
    fn spgemm_rows(
        &self,
        rhs: &Csr,
        rows: std::ops::Range<usize>,
        flops_hint: f64,
        scratch: &mut ScatterScratch,
    ) -> (Vec<usize>, Vec<u32>, Vec<f64>) {
        // The estimate is already ≤ rows·cols; the flop count is a hard
        // upper bound on output nnz (each multiply-add touches one cell).
        let reserve = crate::chain::spmm_nnz_estimate(rows.len(), rhs.ncols, flops_hint)
            .ceil()
            .min(flops_hint) as usize;
        let mut row_ends = Vec::with_capacity(rows.len());
        let mut indices: Vec<u32> = Vec::with_capacity(reserve);
        let mut data: Vec<f64> = Vec::with_capacity(reserve);
        scratch.prepare(rhs.ncols);
        let ScatterScratch { acc, touched } = scratch;
        for r in rows {
            for (&k, &va) in self.row_indices(r).iter().zip(self.row_values(r)) {
                for (&c, &vb) in rhs
                    .row_indices(k as usize)
                    .iter()
                    .zip(rhs.row_values(k as usize))
                {
                    if acc[c as usize] == 0.0 {
                        touched.push(c);
                    }
                    acc[c as usize] += va * vb;
                }
            }
            touched.sort_unstable();
            // `acc == 0.0` can re-mark a column whose partial sums cancelled
            // back to zero (possible only with negative weights); dedup so a
            // cancelled-and-revived column cannot emit twice.
            touched.dedup();
            for &c in touched.iter() {
                indices.push(c);
                data.push(acc[c as usize]);
                acc[c as usize] = 0.0;
            }
            touched.clear();
            row_ends.push(indices.len());
        }
        (row_ends, indices, data)
    }

    /// Row-parallel [`Csr::spgemm`]: output rows are partitioned into
    /// `threads` contiguous blocks balanced by per-row multiply-add counts,
    /// each block runs the serial row kernel on its own scoped worker with
    /// its own [`ScatterScratch`], and the disjoint row ranges are stitched
    /// back in order. Bit-identical to [`Csr::spgemm`] by construction —
    /// per-row work is untouched and rows never interact.
    ///
    /// `threads <= 1` degenerates to the serial kernel on the calling
    /// thread (still counting its single row block).
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn spgemm_parallel(&self, rhs: &Csr, threads: usize) -> Csr {
        assert_eq!(
            self.ncols, rhs.nrows,
            "Csr::spgemm_parallel: inner dimensions {}x{} * {}x{}",
            self.nrows, self.ncols, rhs.nrows, rhs.ncols
        );
        // Exact per-row work: each A-nonzero (r, k) scatters row k of B.
        let row_flops = |r: usize| -> usize {
            self.row_indices(r)
                .iter()
                .map(|&k| rhs.row_nnz(k as usize))
                .sum()
        };
        let blocks = crate::pool::partition_blocks(self.nrows, threads, row_flops);
        let total_flops: f64 = (0..self.nrows).map(|r| row_flops(r) as f64).sum();
        crate::counters::with(|c| {
            use std::sync::atomic::Ordering::Relaxed;
            c.spgemm_calls.fetch_add(1, Relaxed);
            c.spgemm_flops.fetch_add(total_flops as u64, Relaxed);
            c.row_blocks.fetch_add(blocks.len() as u64, Relaxed);
        });
        let per_block_hint = total_flops / blocks.len().max(1) as f64;
        let parts = crate::pool::run_partitioned(blocks, threads, |block| {
            self.spgemm_rows(rhs, block, per_block_hint, &mut ScatterScratch::new())
        });
        // Stitch: concatenate per-block arrays in row order, rebasing each
        // block's row-end offsets onto the running global length.
        let nnz: usize = parts.iter().map(|(_, i, _)| i.len()).sum();
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        indptr.push(0usize);
        let mut indices: Vec<u32> = Vec::with_capacity(nnz);
        let mut data: Vec<f64> = Vec::with_capacity(nnz);
        for (row_ends, block_indices, block_data) in parts {
            let base = indices.len();
            indices.extend_from_slice(&block_indices);
            data.extend_from_slice(&block_data);
            indptr.extend(row_ends.into_iter().map(|e| base + e));
        }
        Csr::from_parts_unchecked(self.nrows, rhs.ncols, indptr, indices, data)
    }

    /// Scale row `r` by `rows[r]` in place (a view-backed matrix promotes
    /// to owned storage first — the shared arena is never written).
    pub fn scale_rows(&mut self, rows: &[f64]) {
        assert_eq!(rows.len(), self.nrows);
        self.make_owned();
        let Storage::Owned { indptr, data, .. } = &mut self.storage else {
            unreachable!("make_owned leaves Owned storage");
        };
        for (r, &s) in rows.iter().enumerate() {
            for v in &mut data[indptr[r]..indptr[r + 1]] {
                *v *= s;
            }
        }
    }

    /// Return a row-stochastic copy (each nonempty row sums to 1).
    pub fn row_normalized(&self) -> Csr {
        let mut out = self.clone();
        let scales: Vec<f64> = out
            .row_sums()
            .iter()
            .map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 })
            .collect();
        out.scale_rows(&scales);
        out
    }

    /// Multiply every stored value by `alpha` (copy-on-write for views,
    /// like [`Csr::scale_rows`]).
    pub fn scale(&mut self, alpha: f64) {
        for v in self.data_mut() {
            *v *= alpha;
        }
    }

    /// Drop stored entries with `|value| <= eps`.
    pub fn prune(&self, eps: f64) -> Csr {
        Csr::from_triplets(
            self.nrows,
            self.ncols,
            self.iter().filter(|&(_, _, v)| v.abs() > eps),
        )
    }

    /// Elementwise sum of two equal-shaped matrices.
    pub fn add(&self, rhs: &Csr) -> Csr {
        assert_eq!((self.nrows, self.ncols), (rhs.nrows, rhs.ncols));
        Csr::from_triplets(self.nrows, self.ncols, self.iter().chain(rhs.iter()))
    }

    /// Dense copy (for tests and small-matrix interop).
    pub fn to_dense(&self) -> DMat {
        let mut m = DMat::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            m.add_to(r as usize, c as usize, v);
        }
        m
    }

    /// `true` when the matrix equals its transpose exactly (structure and
    /// values).
    pub fn is_symmetric(&self) -> bool {
        self.nrows == self.ncols && *self == self.transpose()
    }

    /// The raw `(indptr, indices, data)` arrays — the codec's and the
    /// snapshot encoder's view. Backing-independent: works identically for
    /// owned and arena-view matrices.
    pub fn parts(&self) -> (&[usize], &[u32], &[f64]) {
        (self.indptr(), self.indices(), self.data())
    }

    /// Assemble owned storage from raw arrays whose invariants the caller
    /// has already verified (the codec validates everything it decodes
    /// before calling this).
    pub(crate) fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        data: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), nrows + 1);
        debug_assert_eq!(indices.len(), data.len());
        Self {
            nrows,
            ncols,
            storage: Storage::Owned {
                indptr,
                indices,
                data,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        Csr::from_triplets(3, 3, [(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)])
    }

    #[test]
    fn nbytes_tracks_structure() {
        let m = sample();
        let want = 4 * std::mem::size_of::<usize>() // indptr: nrows + 1
            + 4 * std::mem::size_of::<u32>() // indices: nnz
            + 4 * std::mem::size_of::<f64>(); // data: nnz
        assert_eq!(m.nbytes(), want);
        // an empty matrix still pays for its indptr
        assert_eq!(Csr::zeros(7, 3).nbytes(), 8 * std::mem::size_of::<usize>());
    }

    #[test]
    fn construction_sorted_and_merged() {
        let m = Csr::from_triplets(2, 2, [(1, 1, 1.0), (0, 0, 2.0), (1, 1, 3.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn rows_and_sums() {
        let m = sample();
        assert_eq!(m.row_indices(0), &[0, 2]);
        assert_eq!(m.row_values(2), &[3.0, 4.0]);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row_sum(2), 7.0);
        assert_eq!(m.total(), 10.0);
        assert_eq!(m.row_sums(), vec![3.0, 0.0, 7.0]);
    }

    #[test]
    fn transpose_involution_and_values() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matvec_and_transpose_matvec() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 0.0, 7.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0, 1.0]), vec![4.0, 4.0, 2.0]);
        // matvec_t agrees with explicit transpose
        assert_eq!(
            m.matvec_t(&[0.5, 1.0, 2.0]),
            m.transpose().matvec(&[0.5, 1.0, 2.0])
        );
    }

    #[test]
    fn spgemm_matches_dense() {
        let a = sample();
        let b = a.transpose();
        let sparse = a.spgemm(&b).to_dense();
        let dense = a.to_dense().matmul(&b.to_dense());
        assert!(sparse.max_abs_diff(&dense) < 1e-12);
    }

    #[test]
    fn spgemm_scratch_reuse_matches_fresh() {
        let a = sample();
        let b = a.transpose();
        let mut scratch = ScatterScratch::new();
        // two products of different output widths through one scratch: the
        // accumulator must come back zeroed between them
        let first = a.spgemm_with(&b, &mut scratch);
        let second = b.spgemm_with(&a, &mut scratch);
        assert_eq!(first, a.spgemm(&b));
        assert_eq!(second, b.spgemm(&a));
    }

    #[test]
    fn spgemm_parallel_is_bit_identical_to_serial() {
        // a deliberately skewed product: heavy rows up front, empty rows in
        // the middle, so the block partitioner actually has work to balance
        let a = Csr::from_triplets(
            40,
            30,
            (0..40u32).flat_map(|r| {
                (0..30u32)
                    .filter(move |c| (r < 5) || ((r + c) % 7 == 0 && r % 3 != 0))
                    .map(move |c| (r, c, 1.0 + ((r * 31 + c) % 5) as f64 * 0.25))
            }),
        );
        let b = Csr::from_triplets(
            30,
            25,
            (0..30u32).flat_map(|r| {
                (0..25u32)
                    .filter(move |c| (r * 13 + c * 7) % 4 == 0)
                    .map(move |c| (r, c, 0.5 + ((r + c) % 3) as f64))
            }),
        );
        let serial = a.spgemm(&b);
        for threads in [1, 2, 4, 9] {
            let par = a.spgemm_parallel(&b, threads);
            assert_eq!(par.nrows(), serial.nrows());
            assert_eq!(par.ncols(), serial.ncols());
            assert_eq!(par.parts().0, serial.parts().0, "{threads} indptr");
            assert_eq!(par.parts().1, serial.parts().1, "{threads} indices");
            let same_bits = par
                .parts()
                .2
                .iter()
                .zip(serial.parts().2)
                .all(|(p, s)| p.to_bits() == s.to_bits());
            assert!(same_bits, "{threads} threads: values diverged");
        }
        // degenerate shapes survive the block partitioner
        let empty = Csr::zeros(0, 4);
        let tall = Csr::zeros(4, 3);
        assert_eq!(empty.spgemm_parallel(&tall, 4), empty.spgemm(&tall));
        assert_eq!(sample().spgemm_parallel(&Csr::zeros(3, 2), 4).nnz(), 0);
    }

    #[test]
    fn spgemm_parallel_counts_row_blocks() {
        let sink = {
            let sink = std::sync::Arc::new(crate::counters::KernelCounters::default());
            crate::counters::install(std::sync::Arc::clone(&sink));
            crate::counters::installed().expect("a sink was just installed")
        };
        let before = sink.snapshot();
        let a = sample();
        let b = a.transpose();
        let _ = a.spgemm_parallel(&b, 2);
        let after = sink.snapshot();
        assert!(after.spgemm_calls > before.spgemm_calls);
        assert!(after.row_blocks > before.row_blocks);
        // parallel records the same exact flop figure the serial kernel would
        assert!(after.spgemm_flops >= before.spgemm_flops + 4);
    }

    #[test]
    fn spgemm_cancellation_does_not_duplicate_columns() {
        // row 0 of a reaches rows 0,1,2 of b; their contributions to
        // column 0 go 1 → 0 (cancelled) → 1, re-marking the column
        let a = Csr::from_triplets(1, 3, [(0u32, 0u32, 1.0), (0, 1, 1.0), (0, 2, 1.0)]);
        let b = Csr::from_triplets(3, 2, [(0u32, 0u32, 1.0), (1, 0, -1.0), (2, 0, 1.0)]);
        let p = a.spgemm(&b);
        assert_eq!(p.row_indices(0), &[0], "cancelled column emits once");
        assert_eq!(p.row_values(0), &[1.0]);
        assert_eq!(p.nnz(), 1);
    }

    #[test]
    fn row_normalization() {
        let m = sample().row_normalized();
        assert!((m.row_sum(0) - 1.0).abs() < 1e-12);
        assert_eq!(m.row_sum(1), 0.0);
        assert!((m.get(2, 1) - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn add_and_prune() {
        let m = sample();
        let s = m.add(&m);
        assert_eq!(s.get(2, 1), 8.0);
        let neg = Csr::from_triplets(3, 3, [(0, 0, -1.0)]);
        let pruned = m.add(&neg).prune(1e-12);
        assert_eq!(pruned.get(0, 0), 0.0);
        assert_eq!(pruned.nnz(), 3);
    }

    #[test]
    fn symmetry_check() {
        let sym = Csr::from_triplets(2, 2, [(0, 1, 5.0), (1, 0, 5.0)]);
        assert!(sym.is_symmetric());
        assert!(!sample().is_symmetric());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_triplet_panics() {
        let _ = Csr::from_triplets(2, 2, [(2, 0, 1.0)]);
    }
}
