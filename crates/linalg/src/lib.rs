//! Small, dependency-free linear algebra kernels used across the `hin`
//! workspace.
//!
//! The published systems this workspace reproduces (RankClus, NetClus,
//! SimRank, PathSim, spectral clustering) were originally evaluated on top of
//! MATLAB-grade dense/sparse kernels. Rust's sparse linear algebra ecosystem
//! is comparatively immature, so the handful of kernels the algorithms
//! actually need are implemented here:
//!
//! * [`DMat`] — row-major dense matrices with the usual arithmetic,
//! * [`Csr`] — compressed sparse row matrices with `matvec`, transpose and
//!   sparse×sparse products,
//! * [`chain`] — sparse product cost model (`spmm_flops_estimate`,
//!   `spmm_nnz_estimate`) and matrix-chain multiplication-order planning,
//! * [`spvec`] — [`SparseVec`] and the `spvm`/[`spvm_chain`] row-propagation
//!   kernels (plus their cost model), the sparse-row execution mode
//!   anchored meta-path queries run on,
//! * [`pool`] — the scoped worker pool behind the row-parallel kernels
//!   ([`Csr::spgemm_parallel`] / [`spmm_chain_parallel`]): nnz-balanced
//!   row blocks, per-worker scratch, thread-count resolution
//!   (`HIN_KERNEL_THREADS` / [`set_kernel_threads`]),
//! * [`block`] — [`SparseBlock`] and the [`spmm_block_chain`] multi-anchor
//!   kernel: k same-span anchors propagate as one short fat sparse block,
//!   amortizing per-link scatter work across the batch,
//! * [`codec`] — a versioned, checksummed binary wire format for [`Csr`]
//!   (`Csr::to_writer` / `Csr::from_reader`), the persistence boundary
//!   cache snapshots and warm starts stand on,
//! * [`arena`] — the zero-copy storage tier: shared 8-byte-aligned
//!   [`ArenaBuf`] buffers and `Csr::from_arena` views into them, so a
//!   snapshot restore is one read plus zero per-matrix decodes (with
//!   process-wide view/decode counters and a live arena-bytes gauge),
//! * [`eigen::jacobi_eigen`] — cyclic Jacobi eigendecomposition for symmetric
//!   dense matrices,
//! * [`lanczos::lanczos_symmetric`] — Lanczos iteration for large sparse
//!   symmetric operators,
//! * [`solve::solve_linear`] — Gaussian elimination with partial pivoting,
//! * [`counters`] — injectable process-wide kernel profiling counters
//!   (multiply-adds performed, scratch reuse) the serving-stack telemetry
//!   reads.

pub mod arena;
pub mod block;
pub mod chain;
pub mod codec;
pub mod counters;
pub mod csr;
pub mod dense;
pub mod eigen;
pub mod lanczos;
pub mod pool;
pub mod solve;
pub mod spvec;
pub mod vector;

pub use arena::{ArenaBuf, ArenaEntry};
pub use block::{
    spmm_block_chain, spmm_block_chain_parallel, spmm_block_chain_with, spmm_block_with,
    SparseBlock,
};
pub use chain::{
    spmm_chain, spmm_chain_order, spmm_chain_order_priced, spmm_chain_parallel,
    spmm_flops_estimate, spmm_nnz_estimate, ChainPlan, MatSummary, PlanTree,
};
pub use counters::{KernelCounters, KernelCountersSnapshot};
pub use csr::{Csr, ScatterScratch};
pub use dense::DMat;
pub use pool::{
    clear_work_stealing, kernel_threads, set_kernel_threads, set_work_stealing, work_stealing,
    ParallelConfig,
};
pub use spvec::{
    spvm, spvm_chain, spvm_chain_flops_estimate, spvm_chain_with, spvm_flops_estimate, spvm_with,
    SparseVec, SpvmChainEstimate,
};
