//! NetClus: ranking-based clustering of heterogeneous information networks
//! with star network schema (Sun, Yu, Han — KDD'09; tutorial §4(c)).
//!
//! Where RankClus handles two types, NetClus clusters the *center* objects
//! of a star schema (papers linking authors, venues and terms) into
//! **net-clusters** — sub-networks, not object sets — and equips every
//! cluster with *conditional rank distributions* for each attribute type.
//! The generative loop:
//!
//! 1. Within each current net-cluster, estimate `p(a | type, cluster)` for
//!    every attribute object — by within-cluster link mass
//!    ([`RankingMethod::Simple`]) or by authority propagation through the
//!    center ([`RankingMethod::Authority`]) — smoothed against the global
//!    background distribution,
//! 2. score every center object under every cluster as the (log-space)
//!    product of its attribute ranks — a naive-Bayes generative model,
//! 3. EM over the cluster priors and posteriors `p(k | d)`, then re-assign
//!    center objects by maximum posterior.
//!
//! Attribute posteriors `p(k | a)` come out of the same quantities, giving
//! the soft author/venue/term memberships the paper's case study shows
//! (experiment E7).

pub mod evolution;

use hin_core::StarNet;
use hin_linalg::vector::normalize_l1;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Conditional ranking method for attribute distributions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RankingMethod {
    /// Within-cluster link mass, the paper's simple ranking.
    Simple,
    /// Authority propagation through the center: attribute ranks and center
    /// scores reinforce each other for `iters` rounds.
    Authority {
        /// Number of propagation rounds (the paper's experiments converge
        /// in a handful).
        iters: usize,
    },
}

/// Configuration for [`netclus`].
#[derive(Clone, Copy, Debug)]
pub struct NetClusConfig {
    /// Number of net-clusters K.
    pub k: usize,
    /// Conditional ranking method.
    pub ranking: RankingMethod,
    /// Smoothing weight λ toward the global attribute distribution
    /// (the paper's `λS`; 0 = none, 1 = fully global).
    pub lambda: f64,
    /// EM rounds per outer iteration.
    pub em_iters: usize,
    /// Outer iteration cap.
    pub max_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NetClusConfig {
    fn default() -> Self {
        Self {
            k: 4,
            ranking: RankingMethod::Authority { iters: 5 },
            lambda: 0.2,
            em_iters: 5,
            max_iters: 30,
            seed: 1,
        }
    }
}

/// Result of a NetClus run.
#[derive(Clone, Debug)]
pub struct NetClusResult {
    /// Hard cluster assignment of each center object.
    pub assignments: Vec<usize>,
    /// Posterior `p(k | d)` per center object (rows sum to 1).
    pub posteriors: Vec<Vec<f64>>,
    /// Conditional rank distributions: `arm_rank[k][arm][attribute]`,
    /// smoothed, each a distribution over the arm's objects.
    pub arm_rank: Vec<Vec<Vec<f64>>>,
    /// Estimated cluster priors p(k).
    pub cluster_prior: Vec<f64>,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Whether assignments stabilized before the cap.
    pub converged: bool,
}

impl NetClusResult {
    /// Posterior cluster membership of attribute object `a` of arm `arm`:
    /// `p(k | a) ∝ p(a | arm, k) · p(k)`, normalized over clusters.
    pub fn attribute_posterior(&self, arm: usize, a: usize) -> Vec<f64> {
        let mut post: Vec<f64> = self
            .arm_rank
            .iter()
            .zip(&self.cluster_prior)
            .map(|(cluster, &prior)| cluster[arm][a] * prior)
            .collect();
        normalize_l1(&mut post);
        post
    }
}

/// Run NetClus on a star-schema network.
///
/// # Panics
/// Panics when `k == 0` or the star has no center objects.
pub fn netclus(star: &StarNet, config: &NetClusConfig) -> NetClusResult {
    assert!(config.k > 0, "k must be positive");
    assert!(star.n_center > 0, "star has no center objects");
    assert!(
        (0.0..=1.0).contains(&config.lambda),
        "lambda must be in [0,1]"
    );
    let k = config.k.min(star.n_center);
    let n = star.n_center;
    let arms = star.arms.len();
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // global background distributions per arm (for smoothing)
    let global: Vec<Vec<f64>> = star
        .arms
        .iter()
        .map(|arm| {
            let mut g = arm.wt.row_sums();
            normalize_l1(&mut g);
            g
        })
        .collect();

    // initial random partition, every cluster non-empty via round-robin
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    let mut assignments = vec![0usize; n];
    for (pos, &d) in perm.iter().enumerate() {
        assignments[d] = pos % k;
    }

    let mut posteriors = vec![vec![1.0 / k as f64; k]; n];
    let mut prior = vec![1.0 / k as f64; k];
    let mut arm_rank = vec![vec![Vec::new(); arms]; k];
    let mut iterations = 0;
    let mut converged = false;

    while iterations < config.max_iters {
        // ---- conditional rank distributions per cluster ----------------
        for c in 0..k {
            let member: Vec<f64> = assignments
                .iter()
                .map(|&a| if a == c { 1.0 } else { 0.0 })
                .collect();
            let ranks = conditional_ranks(star, &member, config.ranking);
            for (t, mut r) in ranks.into_iter().enumerate() {
                // smooth toward the global distribution
                for (ri, gi) in r.iter_mut().zip(&global[t]) {
                    *ri = (1.0 - config.lambda) * *ri + config.lambda * gi;
                }
                normalize_l1(&mut r);
                arm_rank[c][t] = r;
            }
        }

        // ---- EM: naive-Bayes scores + prior update ----------------------
        let eps = 1e-300f64;
        // log-likelihood of each center object under each cluster
        let mut loglik = vec![vec![0.0f64; k]; n];
        for d in 0..n {
            for c in 0..k {
                let mut ll = 0.0;
                for (t, arm) in star.arms.iter().enumerate() {
                    let (idx, vals) = arm.w.row(d);
                    for (&a, &w) in idx.iter().zip(vals) {
                        ll += w * (arm_rank[c][t][a as usize] + eps).ln();
                    }
                }
                loglik[d][c] = ll;
            }
        }
        for _ in 0..config.em_iters.max(1) {
            // E step: softmax with prior
            for d in 0..n {
                let row = &mut posteriors[d];
                let m = loglik[d]
                    .iter()
                    .zip(&prior)
                    .map(|(ll, p)| ll + p.max(eps).ln())
                    .fold(f64::NEG_INFINITY, f64::max);
                for (c, p) in row.iter_mut().enumerate() {
                    *p = (loglik[d][c] + prior[c].max(eps).ln() - m).exp();
                }
                normalize_l1(row);
            }
            // M step
            let mut new_prior = vec![0.0f64; k];
            for row in &posteriors {
                for (c, p) in row.iter().enumerate() {
                    new_prior[c] += p;
                }
            }
            normalize_l1(&mut new_prior);
            prior = new_prior;
        }

        // ---- re-assignment ----------------------------------------------
        let mut new_assignments: Vec<usize> = posteriors
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .expect("k > 0")
                    .0
            })
            .collect();

        // reseed empty clusters with the most ambiguous objects
        for c in 0..k {
            if !new_assignments.contains(&c) {
                let most_ambiguous = (0..n)
                    .min_by(|&a, &b| {
                        let ma = posteriors[a].iter().cloned().fold(0.0, f64::max);
                        let mb = posteriors[b].iter().cloned().fold(0.0, f64::max);
                        ma.partial_cmp(&mb).expect("finite")
                    })
                    .expect("n > 0");
                new_assignments[most_ambiguous] = c;
            }
        }

        iterations += 1;
        if new_assignments == assignments {
            converged = true;
            break;
        }
        assignments = new_assignments;
    }

    NetClusResult {
        assignments,
        posteriors,
        arm_rank,
        cluster_prior: prior,
        iterations,
        converged,
    }
}

/// Conditional rank distribution for every arm given a center membership
/// weighting (`member[d] ∈ [0,1]`).
fn conditional_ranks(star: &StarNet, member: &[f64], method: RankingMethod) -> Vec<Vec<f64>> {
    match method {
        RankingMethod::Simple => star
            .arms
            .iter()
            .map(|arm| {
                let mut r = arm.wt.matvec(member);
                normalize_l1(&mut r);
                r
            })
            .collect(),
        RankingMethod::Authority { iters } => {
            // center scores and attribute ranks reinforce through the star:
            //   r_t ∝ W_tᵀ · c        (attribute gains rank from its papers)
            //   c(d) ∝ member(d) · Σ_t Σ_a w(d,a) r_t(a)
            let n = star.n_center;
            let mut center: Vec<f64> = member.to_vec();
            normalize_l1(&mut center);
            let mut ranks: Vec<Vec<f64>> = star
                .arms
                .iter()
                .map(|arm| {
                    let mut r = arm.wt.matvec(&center);
                    normalize_l1(&mut r);
                    r
                })
                .collect();
            for _ in 0..iters {
                let mut new_center = vec![0.0f64; n];
                for (t, arm) in star.arms.iter().enumerate() {
                    let contrib = arm.w.matvec(&ranks[t]);
                    for (nc, cv) in new_center.iter_mut().zip(&contrib) {
                        *nc += cv;
                    }
                }
                for (nc, &m) in new_center.iter_mut().zip(member) {
                    *nc *= m; // conditioning: only cluster members carry mass
                }
                normalize_l1(&mut new_center);
                center = new_center;
                for (t, arm) in star.arms.iter().enumerate() {
                    let mut r = arm.wt.matvec(&center);
                    normalize_l1(&mut r);
                    ranks[t] = r;
                }
            }
            ranks
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hin_clustering::{accuracy_hungarian, nmi};
    use hin_synth::DblpConfig;

    fn world() -> hin_synth::DblpData {
        DblpConfig {
            n_areas: 4,
            venues_per_area: 4,
            authors_per_area: 60,
            terms_per_area: 40,
            shared_terms: 20,
            n_papers: 800,
            noise: 0.05,
            area_mixture_alpha: 0.05,
            seed: 33,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn recovers_planted_areas() {
        let d = world();
        let star = d.star();
        let r = netclus(
            &star,
            &NetClusConfig {
                k: 4,
                seed: 3,
                ..Default::default()
            },
        );
        let score = nmi(&r.assignments, &d.paper_area);
        assert!(score > 0.7, "NetClus NMI {score}");
    }

    #[test]
    fn simple_ranking_also_works() {
        let d = world();
        let star = d.star();
        let r = netclus(
            &star,
            &NetClusConfig {
                k: 4,
                ranking: RankingMethod::Simple,
                seed: 4,
                ..Default::default()
            },
        );
        let acc = accuracy_hungarian(&r.assignments, &d.paper_area);
        assert!(acc > 0.6, "simple-ranking accuracy {acc}");
    }

    #[test]
    fn posteriors_and_priors_are_distributions() {
        let d = world();
        let r = netclus(
            &d.star(),
            &NetClusConfig {
                k: 4,
                seed: 5,
                ..Default::default()
            },
        );
        for row in &r.posteriors {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        assert!((r.cluster_prior.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for c in 0..4 {
            for t in 0..3 {
                let s: f64 = r.arm_rank[c][t].iter().sum();
                assert!((s - 1.0).abs() < 1e-6, "cluster {c} arm {t} sums {s}");
            }
        }
    }

    #[test]
    fn top_ranked_attributes_match_cluster_area() {
        let d = world();
        let star = d.star();
        let r = netclus(
            &star,
            &NetClusConfig {
                k: 4,
                seed: 6,
                ..Default::default()
            },
        );
        let venue_arm = star.arm_by_name("venue").expect("venue arm");
        for c in 0..4 {
            // dominant planted area of the cluster's papers
            let mut counts = [0usize; 4];
            for (p, &a) in r.assignments.iter().enumerate() {
                if a == c {
                    counts[d.paper_area[p]] += 1;
                }
            }
            let Some((planted, &cnt)) = counts.iter().enumerate().max_by_key(|&(_, &v)| v) else {
                continue;
            };
            if cnt < 20 {
                continue; // degenerate cluster, nothing to verify
            }
            let top = hin_ranking::top_k(&r.arm_rank[c][venue_arm], 3);
            for &v in &top {
                assert_eq!(
                    d.venue_area[v], planted,
                    "cluster {c}: top venue {v} outside planted area {planted}"
                );
            }
        }
    }

    #[test]
    fn attribute_posterior_identifies_area() {
        let d = world();
        let star = d.star();
        let r = netclus(
            &star,
            &NetClusConfig {
                k: 4,
                seed: 7,
                ..Default::default()
            },
        );
        let venue_arm = star.arm_by_name("venue").expect("venue arm");
        // dominant planted area per cluster
        let cluster_area: Vec<usize> = (0..4)
            .map(|c| {
                let mut counts = [0usize; 4];
                for (p, &a) in r.assignments.iter().enumerate() {
                    if a == c {
                        counts[d.paper_area[p]] += 1;
                    }
                }
                counts
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &v)| v)
                    .unwrap()
                    .0
            })
            .collect();
        // the most-published venue of each cluster should have a posterior
        // whose argmax cluster covers the same planted area (two clusters may
        // share an area, so compare areas rather than cluster ids)
        for c in 0..4 {
            let top = hin_ranking::top_k(&r.arm_rank[c][venue_arm], 1);
            let post = r.attribute_posterior(venue_arm, top[0]);
            assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            let best = post
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(
                cluster_area[best], cluster_area[c],
                "top venue of cluster {c} (area {}) posterior points at cluster {best} (area {})",
                cluster_area[c], cluster_area[best]
            );
        }
    }

    #[test]
    fn full_smoothing_degenerates_gracefully() {
        // λ = 1: every cluster sees the global distribution; posteriors
        // become uniform-ish and the algorithm must still terminate
        let d = world();
        let r = netclus(
            &d.star(),
            &NetClusConfig {
                k: 4,
                lambda: 1.0,
                seed: 8,
                ..Default::default()
            },
        );
        assert_eq!(r.assignments.len(), 800);
        for row in &r.posteriors {
            assert!(row.iter().all(|p| p.is_finite()));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let d = world();
        let cfg = NetClusConfig {
            k: 4,
            seed: 9,
            ..Default::default()
        };
        assert_eq!(
            netclus(&d.star(), &cfg).assignments,
            netclus(&d.star(), &cfg).assignments
        );
    }
}
