//! Evolution of dynamic heterogeneous networks (tutorial §7(a)).
//!
//! Clustering a growing network snapshot-by-snapshot raises the question
//! the tutorial lists as a research frontier: *which cluster at time t+1
//! continues which cluster at time t, and how much did membership churn?*
//! [`track_clusters`] answers it for any pair of hard clusterings over a
//! shared object universe, by maximum-overlap (Hungarian) matching.

use hin_linalg::DMat;

/// Correspondence between two consecutive clusterings.
#[derive(Clone, Debug)]
pub struct EvolutionStep {
    /// For each cluster of the *next* snapshot: the previous cluster it
    /// continues, or `None` for a newborn cluster (no positive overlap with
    /// any previous cluster under the matching).
    pub continues: Vec<Option<usize>>,
    /// Previous clusters with no successor (died or dissolved).
    pub dissolved: Vec<usize>,
    /// Overlap counts: `overlap[prev][next]` = objects shared.
    pub overlap: Vec<Vec<usize>>,
    /// Fraction of objects whose cluster (under the matching) changed.
    pub churn: f64,
}

/// Match clusters across two snapshots of the same object universe.
///
/// `prev` and `next` are hard assignments of the same objects (equal
/// length). Cluster ids need not be aligned or dense; matching maximizes
/// total overlap via the Hungarian algorithm.
///
/// # Panics
/// Panics when the assignment vectors differ in length or are empty.
pub fn track_clusters(prev: &[usize], next: &[usize]) -> EvolutionStep {
    assert_eq!(prev.len(), next.len(), "snapshots must share objects");
    assert!(!prev.is_empty(), "empty snapshots");
    let kp = prev.iter().max().expect("non-empty") + 1;
    let kn = next.iter().max().expect("non-empty") + 1;

    let mut overlap = vec![vec![0usize; kn]; kp];
    for (&a, &b) in prev.iter().zip(next) {
        overlap[a][b] += 1;
    }

    // square profit matrix for the assignment
    let dim = kp.max(kn);
    let mut profit = DMat::zeros(dim, dim);
    for (a, row) in overlap.iter().enumerate() {
        for (b, &v) in row.iter().enumerate() {
            profit.set(a, b, v as f64);
        }
    }
    let assignment = hin_clustering::metrics::hungarian_max(&profit);

    // next-cluster → matched prev cluster with positive overlap
    let mut continues = vec![None; kn];
    for (a, &b) in assignment.iter().enumerate() {
        if a < kp && b < kn && overlap[a][b] > 0 {
            continues[b] = Some(a);
        }
    }
    let dissolved: Vec<usize> = (0..kp).filter(|&a| !continues.contains(&Some(a))).collect();

    // churn under the matching: objects whose next cluster does not
    // continue their previous cluster
    let moved = prev
        .iter()
        .zip(next)
        .filter(|&(&a, &b)| continues[b] != Some(a))
        .count();
    EvolutionStep {
        continues,
        dissolved,
        overlap,
        churn: moved as f64 / prev.len() as f64,
    }
}

/// Track a whole trajectory of snapshots; returns one step per transition.
pub fn track_trajectory(snapshots: &[Vec<usize>]) -> Vec<EvolutionStep> {
    snapshots
        .windows(2)
        .map(|w| track_clusters(&w[0], &w[1]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_clusterings_have_zero_churn() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let step = track_clusters(&a, &a);
        assert_eq!(step.churn, 0.0);
        assert_eq!(step.continues, vec![Some(0), Some(1), Some(2)]);
        assert!(step.dissolved.is_empty());
    }

    #[test]
    fn relabeled_clusterings_have_zero_churn() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![2, 2, 0, 0, 1, 1];
        let step = track_clusters(&a, &b);
        assert_eq!(step.churn, 0.0);
        assert_eq!(step.continues, vec![Some(1), Some(2), Some(0)]);
    }

    #[test]
    fn single_migration_counted() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 1, 1]; // one object moved 0→1
        let step = track_clusters(&a, &b);
        assert!((step.churn - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(step.overlap[0][1], 1);
    }

    #[test]
    fn death_by_absorption() {
        // everything collapses into one cluster: prev 1 has no successor
        let a = vec![0, 0, 0, 0, 1, 1];
        let b = vec![0, 0, 0, 0, 0, 0];
        let step = track_clusters(&a, &b);
        assert_eq!(step.continues, vec![Some(0)]);
        assert_eq!(step.dissolved, vec![1]);
        assert!((step.churn - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn birth_by_split() {
        // one cluster splits in two: exactly one next cluster is newborn
        let a = vec![0, 0, 0, 0];
        let b = vec![0, 0, 1, 1];
        let step = track_clusters(&a, &b);
        let newborns = step.continues.iter().filter(|c| c.is_none()).count();
        assert_eq!(newborns, 1);
        assert!(step.dissolved.is_empty());
        assert!((step.churn - 0.5).abs() < 1e-12);
    }

    #[test]
    fn trajectory_chains_steps() {
        let t0 = vec![0, 0, 1, 1];
        let t1 = vec![0, 0, 1, 1];
        let t2 = vec![1, 1, 0, 0];
        let steps = track_trajectory(&[t0, t1, t2]);
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].churn, 0.0);
        assert_eq!(steps[1].churn, 0.0, "relabeling is not churn");
    }

    #[test]
    #[should_panic(expected = "share objects")]
    fn mismatched_lengths_panic() {
        let _ = track_clusters(&[0, 1], &[0]);
    }
}
