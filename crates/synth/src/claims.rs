//! Conflicting-claims corpus generator for the veracity-analysis
//! experiments (TruthFinder, TKDE'08; tutorial §3(d)).
//!
//! TruthFinder's evaluation measures how accurately true facts are
//! recovered from a websites×facts claim matrix in which sources differ in
//! reliability. The original book-author corpus is proprietary; this
//! generator controls the exact variables the experiment sweeps — source
//! reliability mix, coverage, number of conflicting alternatives — and keeps
//! numeric fact values so that *implication between similar facts* (a core
//! TruthFinder mechanism) is exercised.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One claim: `source` asserts that `object` has value `value`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Claim {
    /// Claiming source (website) id.
    pub source: u32,
    /// Object (e.g. a book) id.
    pub object: u32,
    /// Claimed value (e.g. an encoded author list).
    pub value: f64,
}

/// Configuration of the claims generator.
#[derive(Clone, Debug)]
pub struct ClaimsConfig {
    /// Number of objects about which facts are claimed.
    pub n_objects: usize,
    /// Number of sources.
    pub n_sources: usize,
    /// Fraction of sources that are reliable.
    pub frac_good: f64,
    /// Probability a *good* source states the true value.
    pub reliability_good: f64,
    /// Probability a *bad* source states the true value.
    pub reliability_bad: f64,
    /// Probability a given source makes a claim about a given object.
    pub coverage: f64,
    /// Number of distinct false alternatives floating around per object.
    pub n_false_alternatives: usize,
    /// Standard deviation of "near-miss" errors: with probability 1/2 an
    /// erroneous claim is a small perturbation of the truth rather than a
    /// wild alternative (exercises TruthFinder's implication term).
    pub near_miss_sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClaimsConfig {
    fn default() -> Self {
        Self {
            n_objects: 200,
            n_sources: 40,
            frac_good: 0.5,
            reliability_good: 0.9,
            reliability_bad: 0.3,
            coverage: 0.35,
            n_false_alternatives: 3,
            near_miss_sigma: 0.5,
            seed: 17,
        }
    }
}

/// A generated claims corpus with ground truth.
#[derive(Clone, Debug)]
pub struct ClaimsData {
    /// Number of sources.
    pub n_sources: usize,
    /// Number of objects.
    pub n_objects: usize,
    /// All claims.
    pub claims: Vec<Claim>,
    /// True value per object.
    pub true_value: Vec<f64>,
    /// Whether each source was generated as reliable.
    pub source_is_good: Vec<bool>,
}

impl ClaimsConfig {
    /// Generate a corpus.
    pub fn generate(&self) -> ClaimsData {
        assert!(
            self.n_objects > 0 && self.n_sources > 0,
            "degenerate config"
        );
        let mut rng = SmallRng::seed_from_u64(self.seed);

        // true values well separated on a grid so "wild" alternatives are
        // unambiguous, near-misses are close
        let true_value: Vec<f64> = (0..self.n_objects).map(|o| (o as f64) * 10.0).collect();
        // fixed per-object false alternatives (shared across sources, the
        // way a wrong fact propagates between sites)
        let alternatives: Vec<Vec<f64>> = (0..self.n_objects)
            .map(|o| {
                (0..self.n_false_alternatives)
                    .map(|a| true_value[o] + 3.0 + a as f64 * 2.0 + rng.gen::<f64>())
                    .collect()
            })
            .collect();

        let n_good = (self.n_sources as f64 * self.frac_good).round() as usize;
        let source_is_good: Vec<bool> = (0..self.n_sources).map(|s| s < n_good).collect();

        let mut claims = Vec::new();
        for s in 0..self.n_sources {
            let reliability = if source_is_good[s] {
                self.reliability_good
            } else {
                self.reliability_bad
            };
            for o in 0..self.n_objects {
                if rng.gen::<f64>() >= self.coverage {
                    continue;
                }
                let value = if rng.gen::<f64>() < reliability {
                    true_value[o]
                } else if rng.gen::<bool>() && self.near_miss_sigma > 0.0 {
                    // near miss: perturbed truth (partially correct claim)
                    let z: f64 = {
                        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                        let u2: f64 = rng.gen();
                        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                    };
                    true_value[o] + z * self.near_miss_sigma
                } else {
                    let alts = &alternatives[o];
                    if alts.is_empty() {
                        true_value[o] + 5.0
                    } else {
                        alts[rng.gen_range(0..alts.len())]
                    }
                };
                claims.push(Claim {
                    source: s as u32,
                    object: o as u32,
                    value,
                });
            }
        }
        ClaimsData {
            n_sources: self.n_sources,
            n_objects: self.n_objects,
            claims,
            true_value,
            source_is_good,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_shape() {
        let d = ClaimsConfig::default().generate();
        assert_eq!(d.true_value.len(), 200);
        assert_eq!(d.source_is_good.len(), 40);
        assert_eq!(d.source_is_good.iter().filter(|&&g| g).count(), 20);
        // coverage 0.35 over 40*200 pairs → roughly 2800 claims
        assert!(
            d.claims.len() > 2000 && d.claims.len() < 3600,
            "{}",
            d.claims.len()
        );
        for c in &d.claims {
            assert!((c.source as usize) < 40 && (c.object as usize) < 200);
        }
    }

    #[test]
    fn good_sources_are_more_accurate() {
        let d = ClaimsConfig::default().generate();
        let mut good = (0usize, 0usize);
        let mut bad = (0usize, 0usize);
        for c in &d.claims {
            let correct = (c.value - d.true_value[c.object as usize]).abs() < 1e-9;
            let counter = if d.source_is_good[c.source as usize] {
                &mut good
            } else {
                &mut bad
            };
            counter.0 += correct as usize;
            counter.1 += 1;
        }
        let acc_good = good.0 as f64 / good.1 as f64;
        let acc_bad = bad.0 as f64 / bad.1 as f64;
        assert!(acc_good > 0.8 && acc_bad < 0.5, "{acc_good} vs {acc_bad}");
    }

    #[test]
    fn deterministic() {
        let a = ClaimsConfig::default().generate();
        let b = ClaimsConfig::default().generate();
        assert_eq!(a.claims, b.claims);
    }

    #[test]
    fn zero_alternatives_still_generates() {
        let d = ClaimsConfig {
            n_false_alternatives: 0,
            ..Default::default()
        }
        .generate();
        assert!(!d.claims.is_empty());
    }
}
