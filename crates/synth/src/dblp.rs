//! DBLP-like bibliographic network generator.
//!
//! Substitute for the DBLP datasets used by RankClus (EDBT'09), NetClus
//! (KDD'09), PathSim and the tutorial's case studies. Generates a
//! star-schema network (papers at the center; authors, venues and terms as
//! attribute arms) with `n_areas` planted research areas. Every published
//! experiment on DBLP measures either (a) recovery of area structure
//! (accuracy/NMI against ground truth) or (b) within-area ranking quality —
//! both of which depend only on the schema, the degree skew and the planted
//! mixture, all reproduced here.

use hin_core::{BiNet, Hin, HinBuilder, RelationId, StarNet, TypeId};
use hin_linalg::Csr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::random::{categorical, dirichlet, Zipf};

/// Configuration for the DBLP-like generator.
#[derive(Clone, Debug)]
pub struct DblpConfig {
    /// Number of planted research areas (clusters).
    pub n_areas: usize,
    /// Venues per area.
    pub venues_per_area: usize,
    /// Authors per area.
    pub authors_per_area: usize,
    /// Area-specific terms per area.
    pub terms_per_area: usize,
    /// Background terms shared by all areas (stop-word-like).
    pub shared_terms: usize,
    /// Total papers.
    pub n_papers: usize,
    /// Authors per paper: inclusive range.
    pub authors_per_paper: (usize, usize),
    /// Terms per paper: inclusive range.
    pub terms_per_paper: (usize, usize),
    /// Probability that any individual link (venue/author/term choice)
    /// defects to a uniformly random area — the cluster-separation knob.
    pub noise: f64,
    /// Probability a term is drawn from the shared background vocabulary.
    pub background_term_rate: f64,
    /// Publication years spanned (papers are spread over `0..years`).
    pub years: usize,
    /// Zipf exponent for within-area popularity of venues/authors/terms.
    pub zipf_exponent: f64,
    /// Dirichlet concentration for per-paper area mixtures (small values
    /// make papers near single-area).
    pub area_mixture_alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        Self {
            n_areas: 4,
            venues_per_area: 5,
            authors_per_area: 100,
            terms_per_area: 60,
            shared_terms: 40,
            n_papers: 2_000,
            authors_per_paper: (1, 4),
            terms_per_paper: (4, 8),
            noise: 0.08,
            background_term_rate: 0.25,
            years: 10,
            zipf_exponent: 0.9,
            area_mixture_alpha: 0.08,
            seed: 42,
        }
    }
}

/// Generated bibliographic network plus ground truth.
#[derive(Clone, Debug)]
pub struct DblpData {
    /// The star-schema network.
    pub hin: Hin,
    /// Type handle: papers (the star center).
    pub paper: TypeId,
    /// Type handle: authors.
    pub author: TypeId,
    /// Type handle: venues.
    pub venue: TypeId,
    /// Type handle: terms.
    pub term: TypeId,
    /// Relation handle: paper → author.
    pub written_by: RelationId,
    /// Relation handle: paper → venue.
    pub published_in: RelationId,
    /// Relation handle: paper → term.
    pub mentions: RelationId,
    /// Planted area of each paper (dominant mixture component).
    pub paper_area: Vec<usize>,
    /// Planted area of each author.
    pub author_area: Vec<usize>,
    /// Planted area of each venue.
    pub venue_area: Vec<usize>,
    /// Planted area of each term; `None` for shared background terms.
    pub term_area: Vec<Option<usize>>,
    /// Publication year of each paper in `0..config.years`.
    pub paper_year: Vec<u32>,
    /// The configuration that produced the data.
    pub config: DblpConfig,
}

impl DblpConfig {
    /// Generate a dataset.
    ///
    /// # Panics
    /// Panics on degenerate configuration (zero areas/papers, inverted
    /// ranges).
    pub fn generate(&self) -> DblpData {
        assert!(self.n_areas > 0 && self.n_papers > 0, "degenerate config");
        assert!(
            self.authors_per_paper.0 <= self.authors_per_paper.1
                && self.terms_per_paper.0 <= self.terms_per_paper.1,
            "inverted per-paper ranges"
        );
        let mut rng = SmallRng::seed_from_u64(self.seed);

        let mut b = HinBuilder::new();
        let paper = b.add_type("paper");
        let author = b.add_type("author");
        let venue = b.add_type("venue");
        let term = b.add_type("term");
        let written_by = b.add_relation("written_by", paper, author);
        let published_in = b.add_relation("published_in", paper, venue);
        let mentions = b.add_relation("mentions", paper, term);

        // node arenas, grouped by area so that global id = area * per_area + rank
        let mut venue_area = Vec::new();
        let mut author_area = Vec::new();
        let mut term_area: Vec<Option<usize>> = Vec::new();
        for a in 0..self.n_areas {
            for i in 0..self.venues_per_area {
                b.add_node(venue, &format!("venue_a{a}_{i}"));
                venue_area.push(a);
            }
        }
        for a in 0..self.n_areas {
            for i in 0..self.authors_per_area {
                b.add_node(author, &format!("author_a{a}_{i}"));
                author_area.push(a);
            }
        }
        for a in 0..self.n_areas {
            for i in 0..self.terms_per_area {
                b.add_node(term, &format!("term_a{a}_{i}"));
                term_area.push(Some(a));
            }
        }
        for i in 0..self.shared_terms {
            b.add_node(term, &format!("term_shared_{i}"));
            term_area.push(None);
        }

        let venue_zipf = Zipf::new(self.venues_per_area, self.zipf_exponent);
        let author_zipf = Zipf::new(self.authors_per_area, self.zipf_exponent);
        let term_zipf = Zipf::new(self.terms_per_area, self.zipf_exponent);
        let shared_zipf =
            (self.shared_terms > 0).then(|| Zipf::new(self.shared_terms, self.zipf_exponent));

        let mut paper_area = Vec::with_capacity(self.n_papers);
        let mut paper_year = Vec::with_capacity(self.n_papers);

        // helper: pick the effective area for one link, with noise defection
        let n_areas = self.n_areas;
        let noise = self.noise;

        for p in 0..self.n_papers {
            // per-paper area mixture; dominant component is the label
            let mix = dirichlet(&mut rng, n_areas, self.area_mixture_alpha);
            let area = mix
                .iter()
                .enumerate()
                .max_by(|x, y| x.1.partial_cmp(y.1).expect("finite"))
                .map(|(i, _)| i)
                .unwrap_or(0);
            paper_area.push(area);
            let year = (p * self.years / self.n_papers) as u32;
            paper_year.push(year);
            let pid = b.add_node(paper, &format!("paper_{p}")).id;

            let link_area = |rng: &mut SmallRng| -> usize {
                if rng.gen::<f64>() < noise {
                    rng.gen_range(0..n_areas)
                } else {
                    categorical(rng, &mix)
                }
            };

            // venue
            let va = link_area(&mut rng);
            let v = (va * self.venues_per_area + venue_zipf.sample(&mut rng)) as u32;
            b.add_edge(published_in, pid, v, 1.0)
                .expect("unit edge weights are finite");

            // authors: distinct within the paper
            let n_auth = rng.gen_range(self.authors_per_paper.0..=self.authors_per_paper.1);
            let mut chosen: Vec<u32> = Vec::with_capacity(n_auth);
            let mut guard = 0;
            while chosen.len() < n_auth && guard < 50 * n_auth.max(1) {
                let aa = link_area(&mut rng);
                let cand = (aa * self.authors_per_area + author_zipf.sample(&mut rng)) as u32;
                if !chosen.contains(&cand) {
                    chosen.push(cand);
                }
                guard += 1;
            }
            for &a_id in &chosen {
                b.add_edge(written_by, pid, a_id, 1.0)
                    .expect("unit edge weights are finite");
            }

            // terms
            let n_terms = rng.gen_range(self.terms_per_paper.0..=self.terms_per_paper.1);
            let shared_base = (n_areas * self.terms_per_area) as u32;
            for _ in 0..n_terms {
                let t = if let (true, Some(sz)) = (
                    rng.gen::<f64>() < self.background_term_rate,
                    shared_zipf.as_ref(),
                ) {
                    shared_base + sz.sample(&mut rng) as u32
                } else {
                    let ta = link_area(&mut rng);
                    (ta * self.terms_per_area + term_zipf.sample(&mut rng)) as u32
                };
                b.add_edge(mentions, pid, t, 1.0)
                    .expect("unit edge weights are finite");
            }
        }

        DblpData {
            hin: b.build(),
            paper,
            author,
            venue,
            term,
            written_by,
            published_in,
            mentions,
            paper_area,
            author_area,
            venue_area,
            term_area,
            paper_year,
            config: self.clone(),
        }
    }
}

impl DblpData {
    /// The star view (papers at the center) consumed by NetClus.
    pub fn star(&self) -> StarNet {
        StarNet::from_hin_with_center(&self.hin, self.paper).expect("generated star schema")
    }

    /// The venue×author bi-typed view consumed by RankClus: `W_xy[v][a]` =
    /// number of papers author `a` published at venue `v`; `W_yy` = weighted
    /// co-author counts.
    pub fn venue_author_binet(&self) -> BiNet {
        let pv = self.hin.adjacency(self.paper, self.venue).expect("rel");
        let pa = self.hin.adjacency(self.paper, self.author).expect("rel");
        let wxy = hin_core::projection::through_center(pv, pa);
        let wyy = hin_core::projection::project(pa);
        let mut net = BiNet::from_matrix(wxy).with_wyy(wyy);
        net.x_names = (0..self.hin.node_count(self.venue))
            .map(|i| {
                self.hin
                    .node_name(hin_core::NodeRef {
                        ty: self.venue,
                        id: i as u32,
                    })
                    .to_string()
            })
            .collect();
        net.y_names = (0..self.hin.node_count(self.author))
            .map(|i| {
                self.hin
                    .node_name(hin_core::NodeRef {
                        ty: self.author,
                        id: i as u32,
                    })
                    .to_string()
            })
            .collect();
        net
    }

    /// Weighted co-author network over authors (homogeneous projection).
    pub fn coauthor_network(&self) -> Csr {
        let pa = self.hin.adjacency(self.paper, self.author).expect("rel");
        hin_core::projection::project(pa)
    }

    /// Restrict the network to papers published in years `0..=max_year`,
    /// returning cumulative snapshot sizes `(papers, links)` — the input to
    /// densification analysis.
    pub fn snapshot_sizes(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.config.years);
        let pa = self.hin.adjacency(self.paper, self.author).expect("rel");
        let pv = self.hin.adjacency(self.paper, self.venue).expect("rel");
        for max_year in 0..self.config.years as u32 {
            let mut papers = 0usize;
            let mut links = 0usize;
            for (p, &y) in self.paper_year.iter().enumerate() {
                if y <= max_year {
                    papers += 1;
                    links += pa.row_nnz(p) + pv.row_nnz(p);
                }
            }
            out.push((papers, links));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DblpData {
        DblpConfig {
            n_areas: 3,
            venues_per_area: 3,
            authors_per_area: 20,
            terms_per_area: 15,
            shared_terms: 10,
            n_papers: 200,
            seed: 7,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn shapes_and_labels_consistent() {
        let d = small();
        assert_eq!(d.hin.node_count(d.paper), 200);
        assert_eq!(d.hin.node_count(d.venue), 9);
        assert_eq!(d.hin.node_count(d.author), 60);
        assert_eq!(d.hin.node_count(d.term), 55);
        assert_eq!(d.paper_area.len(), 200);
        assert_eq!(d.venue_area.len(), 9);
        assert_eq!(d.author_area.len(), 60);
        assert_eq!(d.term_area.len(), 55);
        assert_eq!(d.term_area.iter().filter(|t| t.is_none()).count(), 10);
        assert!(d.paper_area.iter().all(|&a| a < 3));
    }

    #[test]
    fn every_paper_has_venue_authors_terms() {
        let d = small();
        let pv = d.hin.adjacency(d.paper, d.venue).unwrap();
        let pa = d.hin.adjacency(d.paper, d.author).unwrap();
        let pt = d.hin.adjacency(d.paper, d.term).unwrap();
        for p in 0..200 {
            assert_eq!(pv.row_nnz(p), 1, "paper {p} venue count");
            assert!(pa.row_nnz(p) >= 1 && pa.row_nnz(p) <= 4);
            assert!(pt.row_nnz(p) >= 1, "paper {p} has terms");
        }
    }

    #[test]
    fn low_noise_links_mostly_within_area() {
        let d = DblpConfig {
            noise: 0.02,
            area_mixture_alpha: 0.02,
            seed: 11,
            ..DblpConfig::default()
        }
        .generate();
        let pv = d.hin.adjacency(d.paper, d.venue).unwrap();
        let mut within = 0usize;
        let mut total = 0usize;
        for p in 0..d.paper_area.len() {
            for &v in pv.row_indices(p) {
                total += 1;
                if d.venue_area[v as usize] == d.paper_area[p] {
                    within += 1;
                }
            }
        }
        assert!(
            within as f64 / total as f64 > 0.85,
            "within-area fraction {}",
            within as f64 / total as f64
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.paper_area, b.paper_area);
        assert_eq!(a.hin.total_edges(), b.hin.total_edges());
    }

    #[test]
    fn star_and_binet_views() {
        let d = small();
        let star = d.star();
        assert_eq!(star.n_center, 200);
        assert_eq!(star.arm_count(), 3);

        let binet = d.venue_author_binet();
        assert_eq!(binet.nx, 9);
        assert_eq!(binet.ny, 60);
        assert!(binet.total_weight() > 0.0);
        assert!(binet.wyy.is_some());
        // total venue-author mass equals total author link mass (each paper
        // contributes |authors| venue-author pairs via its single venue)
        let pa = d.hin.adjacency(d.paper, d.author).unwrap();
        assert_eq!(binet.total_weight(), pa.total());
    }

    #[test]
    fn snapshots_grow_monotonically() {
        let d = small();
        let snaps = d.snapshot_sizes();
        assert_eq!(snaps.len(), d.config.years);
        for w in snaps.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
        assert_eq!(snaps.last().unwrap().0, 200);
    }
}
