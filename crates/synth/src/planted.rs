//! Planted-partition (stochastic block model) homogeneous graphs.
//!
//! The evaluation substrate for the homogeneous algorithms of tutorial §2:
//! SCAN and spectral clustering are scored by how well they recover the
//! planted blocks as `p_out/p_in` mixing increases.

use hin_linalg::Csr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the planted-partition model.
#[derive(Clone, Debug)]
pub struct PlantedConfig {
    /// Number of vertices.
    pub n: usize,
    /// Number of planted blocks.
    pub k: usize,
    /// Within-block edge probability.
    pub p_in: f64,
    /// Cross-block edge probability.
    pub p_out: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        Self {
            n: 300,
            k: 3,
            p_in: 0.3,
            p_out: 0.02,
            seed: 1,
        }
    }
}

/// Generate `(adjacency, labels)` with a symmetric unweighted adjacency
/// matrix and vertex block labels. Vertices are assigned to blocks in
/// round-robin order so block sizes differ by at most one.
///
/// # Panics
/// Panics when `n == 0`, `k == 0` or probabilities are outside `[0, 1]`.
pub fn planted_partition(config: &PlantedConfig) -> (Csr, Vec<usize>) {
    assert!(config.n > 0 && config.k > 0, "degenerate planted partition");
    assert!(
        (0.0..=1.0).contains(&config.p_in) && (0.0..=1.0).contains(&config.p_out),
        "probabilities must be in [0,1]"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let labels: Vec<usize> = (0..config.n).map(|v| v % config.k).collect();
    let mut triplets = Vec::new();
    for u in 0..config.n {
        for v in (u + 1)..config.n {
            let p = if labels[u] == labels[v] {
                config.p_in
            } else {
                config.p_out
            };
            if rng.gen::<f64>() < p {
                triplets.push((u as u32, v as u32, 1.0));
                triplets.push((v as u32, u as u32, 1.0));
            }
        }
    }
    (Csr::from_triplets(config.n, config.n, triplets), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_no_self_loops() {
        let (g, labels) = planted_partition(&PlantedConfig::default());
        assert!(g.is_symmetric());
        assert_eq!(labels.len(), 300);
        for v in 0..g.nrows() {
            assert_eq!(g.get(v, v), 0.0);
        }
    }

    #[test]
    fn block_structure_visible() {
        let (g, labels) = planted_partition(&PlantedConfig {
            n: 200,
            k: 2,
            p_in: 0.4,
            p_out: 0.02,
            seed: 9,
        });
        let mut within = 0.0;
        let mut across = 0.0;
        for (u, v, w) in g.iter() {
            if labels[u as usize] == labels[v as usize] {
                within += w;
            } else {
                across += w;
            }
        }
        assert!(within > 5.0 * across, "within {within} across {across}");
    }

    #[test]
    fn extreme_probabilities() {
        let (empty, _) = planted_partition(&PlantedConfig {
            n: 20,
            k: 2,
            p_in: 0.0,
            p_out: 0.0,
            seed: 1,
        });
        assert_eq!(empty.nnz(), 0);
        let (full, labels) = planted_partition(&PlantedConfig {
            n: 20,
            k: 2,
            p_in: 1.0,
            p_out: 0.0,
            seed: 1,
        });
        // every same-block pair is connected
        for u in 0..20 {
            for v in 0..20 {
                if u != v && labels[u] == labels[v] {
                    assert_eq!(full.get(u, v), 1.0);
                }
            }
        }
    }

    #[test]
    fn balanced_blocks() {
        let (_, labels) = planted_partition(&PlantedConfig {
            n: 10,
            k: 3,
            ..Default::default()
        });
        let counts = labels.iter().fold([0usize; 3], |mut acc, &l| {
            acc[l] += 1;
            acc
        });
        assert_eq!(
            counts.iter().max().unwrap() - counts.iter().min().unwrap(),
            1
        );
    }
}
