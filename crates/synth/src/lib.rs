//! Synthetic workload generators.
//!
//! The published evaluations this workspace reproduces ran on proprietary or
//! since-evolved datasets (DBLP snapshots, Flickr crawls, book-seller fact
//! corpora). Each generator here produces the *structural equivalent* that
//! the corresponding experiment actually measures — schema, degree skew,
//! planted ground truth — with every knob the experiments sweep exposed as
//! configuration:
//!
//! * [`dblp`] — star-schema bibliographic networks with planted research
//!   areas (RankClus / NetClus / PathSim / classification experiments),
//! * [`flickr`] — photo-sharing star networks with planted topics,
//! * [`binet`] — direct bi-typed networks with controlled density and
//!   cluster separation (RankClus accuracy sweeps),
//! * [`planted`] — homogeneous planted-partition graphs (SCAN / spectral),
//! * [`claims`] — conflicting-fact corpora with controlled source
//!   reliability (TruthFinder),
//! * [`ambiguous`] — merged-identity reference sets (DISTINCT),
//! * [`growth`] — forest-fire growth traces (densification experiments),
//! * [`random`] — the shared samplers (Zipf, Dirichlet, categorical).

pub mod ambiguous;
pub mod binet;
pub mod claims;
pub mod dblp;
pub mod flickr;
pub mod growth;
pub mod planted;
pub mod random;

pub use ambiguous::{AmbiguousConfig, AmbiguousData, ReferenceRecord};
pub use binet::{BiNetConfig, SyntheticBiNet};
pub use claims::{Claim, ClaimsConfig, ClaimsData};
pub use dblp::{DblpConfig, DblpData};
pub use flickr::{FlickrConfig, FlickrData};
pub use growth::{forest_fire, GrowthConfig, Snapshot};
pub use planted::{planted_partition, PlantedConfig};
