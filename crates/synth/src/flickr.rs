//! Flickr-like photo-sharing network generator.
//!
//! The tutorial's second case study turns Flickr into an information
//! network: photos linked to users, tags, groups and comments. This
//! generator reproduces that star schema with planted *topics* (analogous to
//! the DBLP research areas) so the same clustering/classification
//! experiments can run on a second, differently-shaped domain: more arms,
//! heavier tag reuse, users that span topics more than authors do.

use hin_core::{Hin, HinBuilder, RelationId, StarNet, TypeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::random::{categorical, dirichlet, Zipf};

/// Configuration for the Flickr-like generator.
#[derive(Clone, Debug)]
pub struct FlickrConfig {
    /// Number of planted topics.
    pub n_topics: usize,
    /// Users per topic.
    pub users_per_topic: usize,
    /// Tags per topic.
    pub tags_per_topic: usize,
    /// Groups per topic.
    pub groups_per_topic: usize,
    /// Total photos.
    pub n_photos: usize,
    /// Tags per photo (inclusive range).
    pub tags_per_photo: (usize, usize),
    /// Probability a photo joins a group at all.
    pub group_rate: f64,
    /// Link-level noise: probability a link defects to a random topic.
    pub noise: f64,
    /// Dirichlet concentration for per-user topic mixtures (users are less
    /// topic-pure than DBLP authors).
    pub user_mixture_alpha: f64,
    /// Zipf exponent for popularity skew.
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FlickrConfig {
    fn default() -> Self {
        Self {
            n_topics: 4,
            users_per_topic: 50,
            tags_per_topic: 40,
            groups_per_topic: 6,
            n_photos: 1_500,
            tags_per_photo: (2, 6),
            group_rate: 0.7,
            noise: 0.1,
            user_mixture_alpha: 0.3,
            zipf_exponent: 1.0,
            seed: 99,
        }
    }
}

/// Generated photo-sharing network plus ground truth.
#[derive(Clone, Debug)]
pub struct FlickrData {
    /// The star-schema network (photos at the center).
    pub hin: Hin,
    /// Type handle: photos.
    pub photo: TypeId,
    /// Type handle: users.
    pub user: TypeId,
    /// Type handle: tags.
    pub tag: TypeId,
    /// Type handle: groups.
    pub group: TypeId,
    /// Relation handle: photo → user (uploader).
    pub uploaded_by: RelationId,
    /// Relation handle: photo → tag.
    pub tagged: RelationId,
    /// Relation handle: photo → group.
    pub in_group: RelationId,
    /// Planted topic of each photo.
    pub photo_topic: Vec<usize>,
    /// Planted dominant topic of each user.
    pub user_topic: Vec<usize>,
    /// Planted topic of each tag.
    pub tag_topic: Vec<usize>,
    /// Planted topic of each group.
    pub group_topic: Vec<usize>,
}

impl FlickrConfig {
    /// Generate a dataset.
    pub fn generate(&self) -> FlickrData {
        assert!(self.n_topics > 0 && self.n_photos > 0, "degenerate config");
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut b = HinBuilder::new();
        let photo = b.add_type("photo");
        let user = b.add_type("user");
        let tag = b.add_type("tag");
        let group = b.add_type("group");
        let uploaded_by = b.add_relation("uploaded_by", photo, user);
        let tagged = b.add_relation("tagged", photo, tag);
        let in_group = b.add_relation("in_group", photo, group);

        let mut user_topic = Vec::new();
        let mut tag_topic = Vec::new();
        let mut group_topic = Vec::new();
        for t in 0..self.n_topics {
            for i in 0..self.users_per_topic {
                b.add_node(user, &format!("user_t{t}_{i}"));
                user_topic.push(t);
            }
        }
        for t in 0..self.n_topics {
            for i in 0..self.tags_per_topic {
                b.add_node(tag, &format!("tag_t{t}_{i}"));
                tag_topic.push(t);
            }
        }
        for t in 0..self.n_topics {
            for i in 0..self.groups_per_topic {
                b.add_node(group, &format!("group_t{t}_{i}"));
                group_topic.push(t);
            }
        }

        // per-user topic mixture: users post mostly (not only) in their topic
        let user_mixes: Vec<Vec<f64>> = (0..self.n_topics * self.users_per_topic)
            .map(|u| {
                let mut mix = dirichlet(&mut rng, self.n_topics, self.user_mixture_alpha);
                // bias towards the user's home topic
                mix[user_topic[u]] += 1.0;
                let s: f64 = mix.iter().sum();
                mix.iter().map(|m| m / s).collect()
            })
            .collect();

        let user_zipf = Zipf::new(self.n_topics * self.users_per_topic, self.zipf_exponent);
        let tag_zipf = Zipf::new(self.tags_per_topic, self.zipf_exponent);
        let group_zipf = Zipf::new(self.groups_per_topic, self.zipf_exponent);

        let mut photo_topic = Vec::with_capacity(self.n_photos);
        for p in 0..self.n_photos {
            // pick an uploader first (popularity-skewed), then a topic from
            // the uploader's mixture — photos inherit user interests
            let uploader = user_zipf.sample(&mut rng);
            let topic = if rng.gen::<f64>() < self.noise {
                rng.gen_range(0..self.n_topics)
            } else {
                categorical(&mut rng, &user_mixes[uploader])
            };
            photo_topic.push(topic);
            let pid = b.add_node(photo, &format!("photo_{p}")).id;
            b.add_edge(uploaded_by, pid, uploader as u32, 1.0)
                .expect("unit edge weights are finite");

            let n_tags = rng.gen_range(self.tags_per_photo.0..=self.tags_per_photo.1);
            for _ in 0..n_tags {
                let tt = if rng.gen::<f64>() < self.noise {
                    rng.gen_range(0..self.n_topics)
                } else {
                    topic
                };
                let t = (tt * self.tags_per_topic + tag_zipf.sample(&mut rng)) as u32;
                b.add_edge(tagged, pid, t, 1.0)
                    .expect("unit edge weights are finite");
            }

            if rng.gen::<f64>() < self.group_rate {
                let gt = if rng.gen::<f64>() < self.noise {
                    rng.gen_range(0..self.n_topics)
                } else {
                    topic
                };
                let g = (gt * self.groups_per_topic + group_zipf.sample(&mut rng)) as u32;
                b.add_edge(in_group, pid, g, 1.0)
                    .expect("unit edge weights are finite");
            }
        }

        FlickrData {
            hin: b.build(),
            photo,
            user,
            tag,
            group,
            uploaded_by,
            tagged,
            in_group,
            photo_topic,
            user_topic,
            tag_topic,
            group_topic,
        }
    }
}

impl FlickrData {
    /// The star view (photos at the center).
    pub fn star(&self) -> StarNet {
        StarNet::from_hin_with_center(&self.hin, self.photo).expect("generated star schema")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let d = FlickrConfig {
            n_photos: 300,
            seed: 5,
            ..Default::default()
        }
        .generate();
        assert_eq!(d.hin.node_count(d.photo), 300);
        assert_eq!(d.hin.node_count(d.user), 200);
        assert_eq!(d.hin.node_count(d.tag), 160);
        assert_eq!(d.hin.node_count(d.group), 24);
        assert_eq!(d.photo_topic.len(), 300);
        let star = d.star();
        assert_eq!(star.arm_count(), 3);
        assert_eq!(star.center_name, "photo");
    }

    #[test]
    fn every_photo_has_uploader_and_tags() {
        let d = FlickrConfig {
            n_photos: 200,
            seed: 6,
            ..Default::default()
        }
        .generate();
        let pu = d.hin.adjacency(d.photo, d.user).unwrap();
        let pt = d.hin.adjacency(d.photo, d.tag).unwrap();
        for p in 0..200 {
            assert_eq!(pu.row_nnz(p), 1);
            assert!(pt.row_nnz(p) >= 1);
        }
    }

    #[test]
    fn tags_follow_topics_at_low_noise() {
        let d = FlickrConfig {
            noise: 0.02,
            user_mixture_alpha: 0.05,
            seed: 8,
            ..Default::default()
        }
        .generate();
        let pt = d.hin.adjacency(d.photo, d.tag).unwrap();
        let mut within = 0usize;
        let mut total = 0usize;
        for p in 0..d.photo_topic.len() {
            for &t in pt.row_indices(p) {
                total += 1;
                if d.tag_topic[t as usize] == d.photo_topic[p] {
                    within += 1;
                }
            }
        }
        assert!(within as f64 / total as f64 > 0.85);
    }
}
