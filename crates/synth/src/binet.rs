//! Direct bi-typed network generator for the RankClus accuracy sweeps.
//!
//! RankClus (EDBT'09, §6.1) evaluates on synthetic bi-typed networks with
//! controlled *density* (average links per target object) and *separation*
//! (fraction of link mass that stays within the generating cluster). This
//! generator exposes exactly those two knobs, plus cluster-size imbalance.

use hin_core::BiNet;
use hin_linalg::Csr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::random::{categorical, Zipf};

/// Configuration for the synthetic bi-typed network.
#[derive(Clone, Debug)]
pub struct BiNetConfig {
    /// Number of planted clusters.
    pub k: usize,
    /// Target objects (X) per cluster.
    pub nx_per_cluster: usize,
    /// Attribute objects (Y) per cluster.
    pub ny_per_cluster: usize,
    /// Average number of links emitted per target object (density knob;
    /// the EDBT'09 sweep varies this between 1000/|X| analogues).
    pub links_per_x: f64,
    /// Probability that a link lands in a *different* cluster's attribute
    /// block (separation knob; EDBT'09's P matrices encode the same thing).
    pub cross: f64,
    /// Zipf exponent for attribute popularity within a cluster.
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BiNetConfig {
    fn default() -> Self {
        Self {
            k: 3,
            nx_per_cluster: 10,
            ny_per_cluster: 100,
            links_per_x: 250.0,
            cross: 0.15,
            zipf_exponent: 0.8,
            seed: 1,
        }
    }
}

/// A generated bi-typed network with planted ground truth.
#[derive(Clone, Debug)]
pub struct SyntheticBiNet {
    /// The network (X = targets, Y = attributes).
    pub net: BiNet,
    /// Planted cluster of each target object.
    pub x_labels: Vec<usize>,
    /// Planted cluster of each attribute object.
    pub y_labels: Vec<usize>,
}

impl BiNetConfig {
    /// Generate a network.
    ///
    /// # Panics
    /// Panics on degenerate configuration.
    pub fn generate(&self) -> SyntheticBiNet {
        assert!(
            self.k > 0 && self.nx_per_cluster > 0 && self.ny_per_cluster > 0,
            "degenerate BiNetConfig"
        );
        assert!((0.0..=1.0).contains(&self.cross), "cross must be in [0,1]");
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let nx = self.k * self.nx_per_cluster;
        let ny = self.k * self.ny_per_cluster;
        let zipf = Zipf::new(self.ny_per_cluster, self.zipf_exponent);

        // cluster weight template: own cluster gets (1-cross), others split
        // the remainder evenly (the EDBT'09 transition-matrix shape)
        let mut triplets: Vec<(u32, u32, f64)> = Vec::new();
        let x_labels: Vec<usize> = (0..nx).map(|x| x / self.nx_per_cluster).collect();
        let y_labels: Vec<usize> = (0..ny).map(|y| y / self.ny_per_cluster).collect();

        for x in 0..nx {
            let own = x_labels[x];
            let weights: Vec<f64> = (0..self.k)
                .map(|c| {
                    if c == own {
                        1.0 - self.cross
                    } else if self.k > 1 {
                        self.cross / (self.k - 1) as f64
                    } else {
                        0.0
                    }
                })
                .collect();
            // Poisson-ish link count around links_per_x
            let n_links = ((self.links_per_x * (0.5 + rng.gen::<f64>())) as usize).max(1);
            for _ in 0..n_links {
                let c = categorical(&mut rng, &weights);
                let y = c * self.ny_per_cluster + zipf.sample(&mut rng);
                triplets.push((x as u32, y as u32, 1.0));
            }
        }
        let wxy = Csr::from_triplets(nx, ny, triplets);
        SyntheticBiNet {
            net: BiNet::from_matrix(wxy),
            x_labels,
            y_labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_and_labels() {
        let s = BiNetConfig::default().generate();
        assert_eq!(s.net.nx, 30);
        assert_eq!(s.net.ny, 300);
        assert_eq!(s.x_labels.len(), 30);
        assert_eq!(s.y_labels.len(), 300);
        assert_eq!(s.x_labels[0], 0);
        assert_eq!(s.x_labels[29], 2);
    }

    #[test]
    fn density_knob_controls_mass() {
        let lo = BiNetConfig {
            links_per_x: 50.0,
            seed: 2,
            ..Default::default()
        }
        .generate();
        let hi = BiNetConfig {
            links_per_x: 500.0,
            seed: 2,
            ..Default::default()
        }
        .generate();
        assert!(hi.net.total_weight() > 4.0 * lo.net.total_weight());
    }

    #[test]
    fn separation_knob_controls_cross_mass() {
        for &(cross, lo, hi) in &[(0.05, 0.90, 1.0), (0.40, 0.50, 0.70)] {
            let s = BiNetConfig {
                cross,
                seed: 3,
                ..Default::default()
            }
            .generate();
            let mut within = 0.0;
            let mut total = 0.0;
            for (x, y, w) in s.net.wxy.iter() {
                total += w;
                if s.x_labels[x as usize] == s.y_labels[y as usize] {
                    within += w;
                }
            }
            let frac = within / total;
            assert!(
                frac >= lo && frac <= hi,
                "cross={cross}: within-fraction {frac}"
            );
        }
    }

    #[test]
    fn deterministic() {
        let a = BiNetConfig::default().generate();
        let b = BiNetConfig::default().generate();
        assert_eq!(a.net.wxy, b.net.wxy);
    }

    #[test]
    fn single_cluster_no_cross_target() {
        let s = BiNetConfig {
            k: 1,
            cross: 0.0,
            ..Default::default()
        }
        .generate();
        assert_eq!(s.net.nx, 10);
        assert!(s.net.total_weight() > 0.0);
    }
}
