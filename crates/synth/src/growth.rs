//! Forest-fire network growth (Leskovec et al.) for the densification
//! experiments of tutorial §2(a)iii.
//!
//! The densification power law — `E(t) ∝ N(t)^a` with `a > 1` — and
//! shrinking effective diameter are the dynamic-network facts the tutorial
//! teaches. The forest-fire model reproduces both: each arriving vertex
//! picks an ambassador and recursively "burns" (links to) its neighbourhood
//! with geometrically distributed fanout.

use hin_linalg::Csr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Forest-fire growth configuration.
#[derive(Clone, Debug)]
pub struct GrowthConfig {
    /// Final number of vertices.
    pub n: usize,
    /// Forward-burning probability (densification strength). Each burned
    /// vertex spreads to a geometric number of neighbours with mean
    /// `p/(1−p)`, so this undirected variant densifies for `p > 0.5`
    /// (the directed original's interesting regime of `0.3..0.4` maps to
    /// `0.5..0.6` here because there is no separate backward-burning boost).
    pub p_forward: f64,
    /// Number of evenly spaced snapshots to record.
    pub snapshots: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GrowthConfig {
    fn default() -> Self {
        Self {
            n: 2_000,
            p_forward: 0.55,
            snapshots: 10,
            seed: 5,
        }
    }
}

/// One recorded point of the growth trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Vertices at this point.
    pub nodes: usize,
    /// Undirected edges at this point.
    pub edges: usize,
}

/// Grow a forest-fire network and return `(final adjacency, snapshots)`.
/// The adjacency is symmetric and unweighted.
pub fn forest_fire(config: &GrowthConfig) -> (Csr, Vec<Snapshot>) {
    assert!(config.n >= 2, "need at least two vertices");
    assert!(
        (0.0..1.0).contains(&config.p_forward),
        "p_forward must be in [0,1)"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); config.n];
    let mut n_edges = 0usize;
    let mut snapshots = Vec::with_capacity(config.snapshots);
    let every = (config.n / config.snapshots.max(1)).max(1);

    // seed edge
    adj[0].push(1);
    adj[1].push(0);
    n_edges += 1;

    for v in 2..config.n {
        let ambassador = rng.gen_range(0..v) as u32;
        // breadth-first burning from the ambassador
        let mut burned: Vec<u32> = vec![ambassador];
        let mut frontier: Vec<u32> = vec![ambassador];
        let mut seen = vec![false; v];
        seen[ambassador as usize] = true;
        while let Some(u) = frontier.pop() {
            // geometric number of neighbours to burn: mean p/(1-p)
            let mut burn_count = 0usize;
            while rng.gen::<f64>() < config.p_forward {
                burn_count += 1;
            }
            if burn_count == 0 {
                continue;
            }
            let mut candidates: Vec<u32> = adj[u as usize]
                .iter()
                .copied()
                .filter(|&w| (w as usize) < v && !seen[w as usize])
                .collect();
            for _ in 0..burn_count.min(candidates.len()) {
                let idx = rng.gen_range(0..candidates.len());
                let w = candidates.swap_remove(idx);
                seen[w as usize] = true;
                burned.push(w);
                frontier.push(w);
            }
        }
        for &u in &burned {
            adj[v].push(u);
            adj[u as usize].push(v as u32);
            n_edges += 1;
        }
        if v % every == 0 || v + 1 == config.n {
            snapshots.push(Snapshot {
                nodes: v + 1,
                edges: n_edges,
            });
        }
    }

    let mut triplets = Vec::with_capacity(2 * n_edges);
    for (u, neigh) in adj.iter().enumerate() {
        for &w in neigh {
            triplets.push((u as u32, w, 1.0));
        }
    }
    (Csr::from_triplets(config.n, config.n, triplets), snapshots)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_connected_symmetric() {
        let (g, snaps) = forest_fire(&GrowthConfig {
            n: 500,
            ..Default::default()
        });
        assert!(g.is_symmetric());
        assert!(!snaps.is_empty());
        // every vertex has at least one edge (each arrival links to ≥1)
        for v in 0..500 {
            assert!(g.row_nnz(v) >= 1, "vertex {v} isolated");
        }
    }

    #[test]
    fn snapshots_monotone() {
        let (_, snaps) = forest_fire(&GrowthConfig::default());
        for w in snaps.windows(2) {
            assert!(w[0].nodes < w[1].nodes);
            assert!(w[0].edges <= w[1].edges);
        }
    }

    #[test]
    fn higher_burning_probability_densifies() {
        let (g_lo, _) = forest_fire(&GrowthConfig {
            p_forward: 0.1,
            n: 800,
            seed: 2,
            ..Default::default()
        });
        let (g_hi, _) = forest_fire(&GrowthConfig {
            p_forward: 0.45,
            n: 800,
            seed: 2,
            ..Default::default()
        });
        assert!(
            g_hi.nnz() > g_lo.nnz() * 2,
            "{} vs {}",
            g_hi.nnz(),
            g_lo.nnz()
        );
    }

    #[test]
    fn deterministic() {
        let (a, sa) = forest_fire(&GrowthConfig::default());
        let (b, sb) = forest_fire(&GrowthConfig::default());
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }
}
