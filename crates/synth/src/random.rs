//! Shared samplers: Zipf, Gamma/Dirichlet, categorical.
//!
//! Implemented in-house (rather than via `rand_distr`) to keep the offline
//! dependency footprint to `rand` itself; the generators only need these
//! three families.

use rand::Rng;

/// A Zipf(θ) sampler over `0..n` using a precomputed CDF table.
///
/// Rank `r` (1-based) has probability ∝ `1 / r^theta`. Table construction is
/// `O(n)`; sampling is `O(log n)` by binary search. The generators use this
/// for venue/author/tag popularity skew — the published networks' degree
/// distributions are heavy-tailed, and cluster-quality results depend on
/// that skew being present.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `0..n` with exponent `theta >= 0`.
    ///
    /// # Panics
    /// Panics when `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(theta >= 0.0 && theta.is_finite(), "bad Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += (r as f64).powf(-theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Sample an index in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` for the 1-element domain (sampling always returns 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Sample from Gamma(shape, 1) by Marsaglia–Tsang, with the `shape < 1`
/// boost.
pub fn gamma(rng: &mut impl Rng, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // boost: X ~ Gamma(a+1) * U^(1/a)
        let x = gamma(rng, shape + 1.0);
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return x * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // standard normal via Box–Muller
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * z).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Sample a probability vector from a symmetric Dirichlet(α) of dimension
/// `k`. Small α (< 1) concentrates mass on few coordinates — used to make
/// papers predominantly single-area with occasional cross-area mixtures.
pub fn dirichlet(rng: &mut impl Rng, k: usize, alpha: f64) -> Vec<f64> {
    assert!(k > 0, "dirichlet dimension must be positive");
    let mut v: Vec<f64> = (0..k).map(|_| gamma(rng, alpha)).collect();
    let total: f64 = v.iter().sum();
    if total <= 0.0 {
        // numerically degenerate: fall back to a one-hot draw
        let hot = rng.gen_range(0..k);
        return (0..k).map(|i| if i == hot { 1.0 } else { 0.0 }).collect();
    }
    for x in &mut v {
        *x /= total;
    }
    v
}

/// Sample an index from an unnormalized weight vector.
///
/// # Panics
/// Panics when the weights are empty or sum to zero.
pub fn categorical(rng: &mut impl Rng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && total.is_finite(),
        "categorical needs positive finite mass"
    );
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Draw `k` distinct samples from `sampler`, giving up gracefully when the
/// domain is smaller than `k` (returns fewer).
pub fn distinct_samples(
    rng: &mut impl Rng,
    sampler: &Zipf,
    k: usize,
    max_tries: usize,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(k);
    let mut tries = 0;
    while out.len() < k.min(sampler.len()) && tries < max_tries {
        let s = sampler.sample(rng);
        if !out.contains(&s) {
            out.push(s);
        }
        tries += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let z = Zipf::new(100, 1.5);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // rank 1 should dominate rank 10 heavily under theta=1.5
        assert!(counts[0] > counts[9] * 5, "{} vs {}", counts[0], counts[9]);
        assert!(counts.iter().sum::<usize>() == 20_000);
    }

    #[test]
    fn zipf_zero_exponent_is_uniformish() {
        let mut rng = SmallRng::seed_from_u64(2);
        let z = Zipf::new(10, 0.0);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 5000.0).abs() < 500.0, "non-uniform: {c}");
        }
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut rng = SmallRng::seed_from_u64(3);
        for &shape in &[0.5, 1.0, 3.0] {
            let n = 30_000;
            let mean: f64 = (0..n).map(|_| gamma(&mut rng, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.1 * shape.max(0.5),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = SmallRng::seed_from_u64(4);
        for &alpha in &[0.1, 1.0, 10.0] {
            let v = dirichlet(&mut rng, 5, alpha);
            assert_eq!(v.len(), 5);
            assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(v.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn dirichlet_small_alpha_concentrates() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut max_mass = 0.0;
        for _ in 0..50 {
            let v = dirichlet(&mut rng, 4, 0.05);
            max_mass += v.iter().cloned().fold(0.0, f64::max);
        }
        assert!(max_mass / 50.0 > 0.9, "alpha=0.05 should be near one-hot");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[categorical(&mut rng, &[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let p2 = counts[2] as f64 / 30_000.0;
        assert!((p2 - 0.7).abs() < 0.03);
    }

    #[test]
    fn distinct_samples_unique() {
        let mut rng = SmallRng::seed_from_u64(7);
        let z = Zipf::new(20, 1.0);
        let s = distinct_samples(&mut rng, &z, 5, 1000);
        assert_eq!(s.len(), 5);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn distinct_samples_small_domain() {
        let mut rng = SmallRng::seed_from_u64(8);
        let z = Zipf::new(3, 1.0);
        let s = distinct_samples(&mut rng, &z, 10, 1000);
        assert_eq!(s.len(), 3);
    }
}
