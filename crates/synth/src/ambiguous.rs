//! Merged-identity reference generator for object distinction (DISTINCT,
//! ICDE'07; tutorial §3(c)).
//!
//! DISTINCT's evaluation protocol: take `k` *distinct real authors*, pretend
//! they all share one name, and measure how well their paper references are
//! partitioned back into the underlying identities. This generator applies
//! the identical protocol to the synthetic DBLP data: it picks `k` authors
//! (from different planted areas, the easy case, or the same area, the hard
//! case), collects each author's paper incidences as "references", and
//! retains ground truth.

use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, SeedableRng};

use crate::dblp::{DblpConfig, DblpData};

/// One ambiguous reference: a paper authored by the merged name, described
/// by its link context in the network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReferenceRecord {
    /// Co-author ids on the paper (excluding the merged identity itself).
    pub coauthors: Vec<u32>,
    /// Venue id of the paper.
    pub venue: u32,
    /// Term ids of the paper.
    pub terms: Vec<u32>,
}

/// Configuration of the ambiguity experiment.
#[derive(Clone, Debug)]
pub struct AmbiguousConfig {
    /// Number of distinct identities merged under one name.
    pub k_identities: usize,
    /// Minimum number of references (papers) per chosen identity.
    pub min_refs: usize,
    /// When `true` all identities come from the same planted area —
    /// the hard case where venues/terms no longer separate them.
    pub same_area: bool,
    /// Underlying bibliographic world.
    pub dblp: DblpConfig,
    /// RNG seed for identity selection.
    pub seed: u64,
}

impl Default for AmbiguousConfig {
    fn default() -> Self {
        Self {
            k_identities: 4,
            min_refs: 5,
            same_area: false,
            dblp: DblpConfig::default(),
            seed: 3,
        }
    }
}

/// A generated ambiguity instance.
#[derive(Clone, Debug)]
pub struct AmbiguousData {
    /// The references attributed to the merged name.
    pub refs: Vec<ReferenceRecord>,
    /// Ground-truth identity (0..k) of each reference.
    pub truth: Vec<usize>,
    /// The source author ids that were merged.
    pub merged_authors: Vec<u32>,
    /// The bibliographic world the references were drawn from.
    pub world: DblpData,
}

impl AmbiguousConfig {
    /// Generate an instance. Identities are chosen among authors with at
    /// least `min_refs` papers; the generator retries author choice but the
    /// world is generated once.
    ///
    /// # Panics
    /// Panics when the world does not contain `k_identities` eligible
    /// authors (make the world bigger or `min_refs` smaller).
    pub fn generate(&self) -> AmbiguousData {
        assert!(self.k_identities >= 2, "need at least two identities");
        let world = self.dblp.generate();
        let mut rng = SmallRng::seed_from_u64(self.seed);

        let ap = world
            .hin
            .adjacency(world.author, world.paper)
            .expect("author-paper relation");

        // eligible authors grouped by area
        let mut eligible: Vec<u32> = (0..world.author_area.len() as u32)
            .filter(|&a| ap.row_nnz(a as usize) >= self.min_refs)
            .collect();
        eligible.shuffle(&mut rng);

        let merged_authors: Vec<u32> = if self.same_area {
            let target_area = world.author_area[eligible
                .first()
                .copied()
                .expect("no eligible authors — enlarge the world")
                as usize];
            eligible
                .iter()
                .copied()
                .filter(|&a| world.author_area[a as usize] == target_area)
                .take(self.k_identities)
                .collect()
        } else {
            // spread across areas round-robin for maximal separability
            let mut picked = Vec::new();
            let mut area = 0;
            while picked.len() < self.k_identities {
                if let Some(&a) = eligible
                    .iter()
                    .find(|&&a| world.author_area[a as usize] == area && !picked.contains(&a))
                {
                    picked.push(a);
                } else if let Some(&a) = eligible.iter().find(|a| !picked.contains(a)) {
                    picked.push(a);
                } else {
                    break;
                }
                area = (area + 1) % self.dblp.n_areas;
            }
            picked
        };
        assert_eq!(
            merged_authors.len(),
            self.k_identities,
            "could not find {} eligible authors (have {})",
            self.k_identities,
            merged_authors.len()
        );

        let pa = world
            .hin
            .adjacency(world.paper, world.author)
            .expect("paper-author");
        let pv = world
            .hin
            .adjacency(world.paper, world.venue)
            .expect("paper-venue");
        let pt = world
            .hin
            .adjacency(world.paper, world.term)
            .expect("paper-term");

        let mut refs = Vec::new();
        let mut truth = Vec::new();
        for (identity, &a) in merged_authors.iter().enumerate() {
            for &p in ap.row_indices(a as usize) {
                let coauthors: Vec<u32> = pa
                    .row_indices(p as usize)
                    .iter()
                    .copied()
                    .filter(|&other| other != a)
                    .collect();
                let venue = pv.row_indices(p as usize)[0];
                let terms = pt.row_indices(p as usize).to_vec();
                refs.push(ReferenceRecord {
                    coauthors,
                    venue,
                    terms,
                });
                truth.push(identity);
            }
        }
        // shuffle references so order carries no signal
        let mut order: Vec<usize> = (0..refs.len()).collect();
        order.shuffle(&mut rng);
        let refs = order.iter().map(|&i| refs[i].clone()).collect();
        let truth = order.iter().map(|&i| truth[i]).collect();

        AmbiguousData {
            refs,
            truth,
            merged_authors,
            world,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AmbiguousConfig {
        AmbiguousConfig {
            k_identities: 3,
            min_refs: 3,
            dblp: DblpConfig {
                n_papers: 1000,
                authors_per_area: 30,
                seed: 21,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn generates_refs_with_truth() {
        let d = cfg().generate();
        assert_eq!(d.merged_authors.len(), 3);
        assert_eq!(d.refs.len(), d.truth.len());
        assert!(d.refs.len() >= 9, "at least min_refs per identity");
        // truth covers all identities
        for id in 0..3 {
            assert!(d.truth.contains(&id));
        }
        // references never list the merged author as their own coauthor
        for (r, &t) in d.refs.iter().zip(&d.truth) {
            assert!(!r.coauthors.contains(&d.merged_authors[t]));
        }
    }

    #[test]
    fn different_area_identities_have_distinct_venues() {
        let d = cfg().generate();
        // identities from different areas should mostly use different venues
        let mut per_identity_venues: Vec<Vec<u32>> = vec![Vec::new(); 3];
        for (r, &t) in d.refs.iter().zip(&d.truth) {
            per_identity_venues[t].push(d.world.venue_area[r.venue as usize] as u32);
        }
        let dominant: Vec<u32> = per_identity_venues
            .iter()
            .map(|vs| {
                let mut counts = std::collections::HashMap::new();
                for &v in vs {
                    *counts.entry(v).or_insert(0usize) += 1;
                }
                counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0
            })
            .collect();
        let mut uniq = dominant.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() >= 2, "identities should differ in venue area");
    }

    #[test]
    fn same_area_mode() {
        let mut c = cfg();
        c.same_area = true;
        let d = c.generate();
        let areas: Vec<usize> = d
            .merged_authors
            .iter()
            .map(|&a| d.world.author_area[a as usize])
            .collect();
        assert!(areas.windows(2).all(|w| w[0] == w[1]));
    }
}
