//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of Criterion's API the workspace benches use — benchmark
//! groups, `bench_with_input`, `BenchmarkId`, `iter` — backed by a simple
//! wall-clock timer: a short warm-up, then repeated timed runs until either
//! the configured sample count or a time budget is reached. Results are
//! printed as `group/id  mean ± std` lines. No plots, no statistics beyond
//! mean/std, no outlier analysis — enough to compare implementations and
//! watch for regressions by eye or by script.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under Criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level harness handle passed to every benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), 20, &mut f);
        self
    }

    /// Mirror of Criterion's CLI-argument hook; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Mirror of Criterion's end-of-run summary; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmark a closure with no separate input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus a parameter rendering.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`, matching Criterion's display convention.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{}", name.into(), parameter))
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Passed to the measured closure; [`Bencher::iter`] times the payload.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `f` repeatedly, recording per-call wall-clock seconds.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call.
        black_box(f());
        let budget = Duration::from_millis(500);
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed().as_secs_f64());
            if started.elapsed() > budget {
                break;
            }
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let n = b.samples.len() as f64;
    let mean = b.samples.iter().sum::<f64>() / n;
    let var = b
        .samples
        .iter()
        .map(|s| (s - mean) * (s - mean))
        .sum::<f64>()
        / n;
    println!(
        "{label:<40} {:>12} ± {:>10}  ({} samples)",
        fmt_time(mean),
        fmt_time(var.sqrt()),
        b.samples.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Define a benchmark group function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Define `main` from benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 1), &2usize, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        assert!(calls >= 4, "warmup + samples, got {calls}");
    }
}
