//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this API-compatible subset of `rand` 0.8 covering exactly what the
//! generators and algorithms use: [`rngs::SmallRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods `gen`,
//! `gen_range`, `gen_bool`, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! family `rand`'s `SmallRng` uses on 64-bit targets — so statistical
//! quality matches what the seeded synthetic-network tests assume. Streams
//! are *not* bit-identical to the upstream crate; every consumer in this
//! workspace treats seeds as arbitrary stream labels, never as references
//! to externally produced data.

pub mod rngs;
pub mod seq;

/// Core source of randomness: everything is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators. Only the `seed_from_u64` entry point is provided —
/// the sole constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (expanded internally via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a `Standard`-distributed type (`f64` in `[0,1)`,
    /// uniform `bool`/integers).
    fn gen<T>(&mut self) -> T
    where
        T: SampleStandard,
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`] without parameters.
pub trait SampleStandard: Sized {
    /// Draw one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw from `[0, span)` via 128-bit multiply-shift with
/// rejection (Lemire's method).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut mean = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            mean += x;
        }
        mean /= 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");

        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0..=5u32);
            assert!(w <= 5);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
