//! Offline stand-in for the `proptest` property-testing framework.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of proptest's API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`strategy::Strategy`] with `prop_map` and `prop_filter`,
//! * range, tuple, char-class string, and [`collection::vec`] strategies.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed derived from the test name (no persisted failure
//! files), and failing inputs are **not shrunk** — the panic message
//! carries the assertion text and case number instead of a minimal
//! counterexample. That trade keeps the dependency offline while the
//! invariants themselves stay fully checked.

pub mod collection;
pub mod strategy;

/// Modules re-exported under the `prop` paths the real crate exposes.
pub mod prop {
    pub use crate::collection;
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-test random source handed to strategies.
pub struct TestRunner {
    base: u64,
    state: u64,
}

impl TestRunner {
    /// Seed deterministically from the test name.
    pub fn new(_config: &ProptestConfig, name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test stream.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { base: h, state: h }
    }

    /// Restart the stream for the given case index.
    pub fn begin_case(&mut self, case: u32) {
        self.state = self
            .base
            .wrapping_add((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, span)`; `span` must be nonzero.
    pub fn next_below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Run one property over `config.cases` random cases.
///
/// Prefer the [`proptest!`] macro, which expands to calls of this function.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::TestRunner::new(&config, stringify!($name));
                for case in 0..config.cases {
                    runner.begin_case(case);
                    $(
                        let $parm = $crate::strategy::Strategy::new_value(
                            &($strategy),
                            &mut runner,
                        );
                    )+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "property `{}` failed on case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            message
                        );
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                lhs,
                rhs
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err(::std::format!(
                "{}: `{:?}` != `{:?}`",
                ::std::format!($($fmt)+),
                lhs,
                rhs
            ));
        }
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if *lhs == *rhs {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                lhs,
                rhs
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.5f64..2.5, z in 0u32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            prop_assert!(z < 5);
        }

        #[test]
        fn tuples_and_vecs((a, b) in (0u32..4, 0u32..4),
                           v in prop::collection::vec(0usize..10, 1..8)) {
            prop_assert!(a < 4 && b < 4);
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn map_and_filter(n in (1usize..6).prop_map(|n| n * 2),
                          m in (0i32..100).prop_filter("even", |m| m % 2 == 0)) {
            prop_assert!(n % 2 == 0 && (2..12).contains(&n));
            prop_assert_eq!(m % 2, 0);
        }

        #[test]
        fn string_char_classes(s in "[a-c ]{2,5}") {
            prop_assert!((2..=5).contains(&s.chars().count()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| c == ' ' || ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn exact_size_vec() {
        let config = ProptestConfig::default();
        let mut runner = crate::TestRunner::new(&config, "exact_size_vec");
        let v = Strategy::new_value(&prop::collection::vec(0.0f64..1.0, 5), &mut runner);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn deterministic_across_runs() {
        let config = ProptestConfig::default();
        let mut r1 = crate::TestRunner::new(&config, "t");
        let mut r2 = crate::TestRunner::new(&config, "t");
        r1.begin_case(3);
        r2.begin_case(3);
        assert_eq!(r1.next_u64(), r2.next_u64());
    }
}
