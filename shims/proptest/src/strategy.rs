//! Value-generation strategies.

use crate::TestRunner;

/// How many draws a filter may reject before the test aborts.
const MAX_FILTER_RETRIES: usize = 10_000;

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`, retrying rejected draws.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }
}

/// A strategy yielding one fixed (cloned) value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// Result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let candidate = self.inner.new_value(runner);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter `{}` rejected {} consecutive draws",
            self.reason, MAX_FILTER_RETRIES
        );
    }
}

/// Strategies may be used behind references.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, runner: &mut TestRunner) -> S::Value {
        (**self).new_value(runner)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(runner.next_below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return runner.next_u64() as $t;
                }
                lo.wrapping_add(runner.next_below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, runner: &mut TestRunner) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + runner.next_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, runner: &mut TestRunner) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + runner.next_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String strategy from a regex-like pattern.
///
/// Supported subset: a single character class with optional repetition —
/// `"[a-z \\\\]{min,max}"`-style patterns (ranges, escaped characters, and
/// literal characters inside `[...]`, `{n}` / `{min,max}` counts). This is
/// what the workspace's property tests use; anything richer panics with a
/// clear message rather than silently generating the wrong language.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, runner: &mut TestRunner) -> String {
        let (alphabet, min, max) = parse_char_class_pattern(self);
        let len = min + runner.next_below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[runner.next_below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_char_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let mut chars = pattern.chars().peekable();
    assert_eq!(
        chars.next(),
        Some('['),
        "proptest shim: only `[class]{{min,max}}` string patterns are supported, got `{pattern}`"
    );
    let mut alphabet: Vec<char> = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated character class in `{pattern}`"));
        match c {
            ']' => break,
            '\\' => {
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in `{pattern}`"));
                alphabet.push(escaped);
                prev = Some(escaped);
            }
            '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                let hi = chars.next().expect("peeked");
                let lo = prev.take().expect("range needs a start");
                assert!(lo <= hi, "descending range `{lo}-{hi}` in `{pattern}`");
                // `lo` itself is already in the alphabet
                let mut cur = lo as u32 + 1;
                while cur <= hi as u32 {
                    alphabet.push(char::from_u32(cur).expect("valid scalar"));
                    cur += 1;
                }
            }
            other => {
                alphabet.push(other);
                prev = Some(other);
            }
        }
    }
    assert!(!alphabet.is_empty(), "empty character class in `{pattern}`");
    alphabet.sort_unstable();
    alphabet.dedup();

    let rest: String = chars.collect();
    if rest.is_empty() {
        return (alphabet, 1, 1);
    }
    let counts = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported pattern suffix `{rest}` in `{pattern}`"));
    let (min, max) = match counts.split_once(',') {
        Some((lo, hi)) => (
            lo.parse().expect("repetition lower bound"),
            hi.parse().expect("repetition upper bound"),
        ),
        None => {
            let n: usize = counts.parse().expect("repetition count");
            (n, n)
        }
    };
    assert!(min <= max, "bad repetition `{{{counts}}}` in `{pattern}`");
    (alphabet, min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProptestConfig;

    #[test]
    fn char_class_parsing() {
        let (alpha, min, max) = parse_char_class_pattern("[a-c]{2,4}");
        assert_eq!(alpha, vec!['a', 'b', 'c']);
        assert_eq!((min, max), (2, 4));

        let (alpha, min, max) = parse_char_class_pattern("[a-z\\ ]{1,12}");
        assert!(alpha.contains(&' ') && alpha.contains(&'a') && alpha.contains(&'z'));
        assert_eq!((min, max), (1, 12));

        let (alpha, min, max) = parse_char_class_pattern("[xy]");
        assert_eq!(alpha, vec!['x', 'y']);
        assert_eq!((min, max), (1, 1));

        let (alpha, _, _) = parse_char_class_pattern("[a\\-b]{3}");
        assert_eq!(alpha, vec!['-', 'a', 'b']);
    }

    #[test]
    fn just_yields_constant() {
        let mut runner = TestRunner::new(&ProptestConfig::default(), "just");
        assert_eq!(Just(7usize).new_value(&mut runner), 7);
    }
}
