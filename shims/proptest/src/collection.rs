//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRunner;

/// An inclusive-exclusive size specification for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max_excl: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max_excl: exact + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            min: r.start,
            max_excl: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        Self {
            min: *r.start(),
            max_excl: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let span = (self.size.max_excl - self.size.min) as u64;
        let len = self.size.min + runner.next_below(span.max(1)) as usize;
        (0..len).map(|_| self.element.new_value(runner)).collect()
    }
}

/// `vec(element, size)` — a `Vec` of `size` values from `element`.
///
/// `size` may be an exact `usize`, a `Range<usize>`, or an inclusive range.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
