//! Flickr case study (tutorial §6): the photo-sharing database as an
//! information network — NetClus topic discovery over photos/users/tags/
//! groups, then GNetMine classification from a handful of labeled photos.
//!
//! Run with: `cargo run --release --example flickr_case_study`

use hin::classify::{gnetmine, holdout_accuracy, GNetMineConfig, Seeds};
use hin::clustering::nmi;
use hin::netclus::{netclus, NetClusConfig};
use hin::ranking::top_k;
use hin::synth::FlickrConfig;

fn main() {
    let data = FlickrConfig {
        n_topics: 4,
        n_photos: 1_200,
        seed: 3,
        ..Default::default()
    }
    .generate();
    println!(
        "synthetic Flickr: {} photos, {} users, {} tags, {} groups",
        data.hin.node_count(data.photo),
        data.hin.node_count(data.user),
        data.hin.node_count(data.tag),
        data.hin.node_count(data.group),
    );

    // ---- NetClus: topic net-clusters -------------------------------------
    let star = data.star();
    let nc = netclus(
        &star,
        &NetClusConfig {
            k: 4,
            seed: 9,
            ..Default::default()
        },
    );
    println!(
        "\nNetClus topic recovery: NMI = {:.3} over {} photos",
        nmi(&nc.assignments, &data.photo_topic),
        data.photo_topic.len(),
    );
    let tag_arm = star.arm_by_name("tag").expect("tag arm");
    let group_arm = star.arm_by_name("group").expect("group arm");
    for c in 0..4 {
        print!("topic {c}: tags [");
        for t in top_k(&nc.arm_rank[c][tag_arm], 4) {
            print!("{} ", star.arms[tag_arm].names[t]);
        }
        print!("] groups [");
        for g in top_k(&nc.arm_rank[c][group_arm], 2) {
            print!("{} ", star.arms[group_arm].names[g]);
        }
        println!("]");
    }

    // ---- GNetMine: classify photos from 5% labels ------------------------
    let mut seeds: Vec<Seeds> = (0..data.hin.type_count())
        .map(|t| vec![None; data.hin.node_count(hin::core::TypeId(t))])
        .collect();
    for (p, &topic) in data.photo_topic.iter().enumerate() {
        if p % 20 == 0 {
            seeds[data.photo.0][p] = Some(topic);
        }
    }
    let cls = gnetmine(
        &data.hin,
        &seeds,
        &GNetMineConfig {
            n_classes: 4,
            ..Default::default()
        },
    );
    let acc = holdout_accuracy(
        &cls.labels[data.photo.0],
        &data.photo_topic,
        &seeds[data.photo.0],
    );
    println!("\nGNetMine with 5% photo labels: holdout accuracy = {acc:.3}");

    // tags get classified for free (no tag was ever labeled)
    let tag_pred = &cls.labels[data.tag.0];
    let tag_acc = tag_pred
        .iter()
        .zip(&data.tag_topic)
        .filter(|(p, t)| p == t)
        .count() as f64
        / tag_pred.len() as f64;
    println!("tag classification (zero tag seeds):  accuracy = {tag_acc:.3}");
}
