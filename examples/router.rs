//! Serving several datasets behind one router, with admission control.
//!
//! Builds two synthetic DBLP-like worlds, registers both on a
//! [`hin::serve::Router`] (each dataset gets its own worker pool, bounded
//! deduplicating cache, and queue-depth cap), drives them from client
//! threads — including a deliberate flood that admission control sheds —
//! then evicts one dataset at runtime and prints the fleet statistics.
//!
//! Run with: `cargo run --release --example router`

use std::sync::Arc;
use std::time::Duration;

use hin::query::{CacheConfig, QueryError};
use hin::serve::{Router, RouterConfig, ServeConfig};
use hin::synth::DblpConfig;

fn main() {
    let router = Arc::new(Router::new(RouterConfig {
        stripes: 4,
        serve: ServeConfig {
            workers: 2,
            queue_depth: Some(64),                // shed past 64 queued
            cache: CacheConfig::bounded(2 << 20), // 2 MiB per dataset
            ..ServeConfig::default()
        },
    }));

    for (key, seed) in [("dblp-a", 42u64), ("dblp-b", 77)] {
        let data = DblpConfig {
            n_areas: 3,
            authors_per_area: 40,
            n_papers: 800,
            seed,
            ..Default::default()
        }
        .generate();
        assert!(router.register(key, Arc::new(data.hin)));
    }
    println!("registered datasets: {:?}\n", router.datasets());

    // client threads interleaving both datasets, with bounded waits
    let clients: Vec<_> = (0..3)
        .map(|c| {
            let router = Arc::clone(&router);
            std::thread::spawn(move || {
                let mut ok = 0usize;
                for a in 0..20 {
                    let anchor = format!("author_a{}_{}", (a + c) % 3, a);
                    let dataset = if (a + c) % 2 == 0 { "dblp-a" } else { "dblp-b" };
                    let ticket = router.submit(
                        dataset,
                        format!("pathsim author-paper-venue-paper-author from {anchor}"),
                    );
                    // wait_timeout bounds latency instead of hanging forever
                    match ticket.wait_timeout(Duration::from_secs(30)) {
                        Ok(_) => ok += 1,
                        Err(QueryError::Overloaded) => {} // back off in real code
                        Err(e) => panic!("query failed: {e}"),
                    }
                }
                ok
            })
        })
        .collect();
    let answered: usize = clients.into_iter().map(|h| h.join().unwrap()).sum();
    println!("interleaved phase: {answered} queries answered");

    // unknown keys are immediate, typed errors — not hangs
    assert!(matches!(
        router.submit("nope", "rank venue-paper-author").wait(),
        Err(QueryError::UnknownDataset(_))
    ));

    // evict one dataset at runtime; the other keeps serving. The evicted
    // dataset's cache comes back as a snapshot — see examples/failover.rs
    // for handing it to a warm replacement.
    let evicted = router.evict("dblp-a").expect("dblp-a was registered");
    let final_a = &evicted.stats;
    println!(
        "\nevicted dblp-a: served {} (cache: {} hits, {} computed, {} coalesced waits; \
         snapshot carries {} matrices)",
        final_a.served,
        final_a.cache_hits,
        final_a.cache_misses,
        final_a.cache_coalesced_waits,
        evicted.snapshot.len(),
    );
    let still_up = router
        .submit("dblp-b", "rank venue-paper-author limit 3")
        .wait()
        .expect("dblp-b still serving");
    println!("dblp-b top venues after eviction:");
    for (name, score) in &still_up.items {
        println!("    {score:>8.1}  {name}");
    }

    let fleet = Arc::try_unwrap(router)
        .map_err(|_| "router still shared")
        .unwrap()
        .shutdown();
    let total = fleet.aggregate();
    println!(
        "\nfleet: {} routed ({} misrouted), {} served, {} shed, dup concurrent computes = {}",
        fleet.routed, fleet.misrouted, total.served, total.shed, total.cache_dup_computes,
    );
    assert_eq!(total.cache_dup_computes, 0);
}
