//! Veracity analysis (tutorial §3(d)): conflicting claims from sources of
//! unknown reliability, resolved by TruthFinder's trust/confidence fixed
//! point — compared against majority voting as reliability degrades.
//!
//! Run with: `cargo run --release --example truth_discovery`

use hin::cleaning::{majority_vote, truthfinder, Claim, TruthFinderConfig};
use hin::synth::ClaimsConfig;

fn main() {
    println!("bad-source reliability sweep (40 sources, half unreliable):\n");
    println!(
        "{:<12} {:>10} {:>12} {:>12}",
        "rel(bad)", "claims", "voting", "truthfinder"
    );
    for &rel_bad in &[0.45, 0.35, 0.25, 0.15] {
        let data = ClaimsConfig {
            n_objects: 300,
            n_sources: 40,
            frac_good: 0.5,
            reliability_good: 0.9,
            reliability_bad: rel_bad,
            seed: 1234,
            ..Default::default()
        }
        .generate();
        let claims: Vec<Claim> = data
            .claims
            .iter()
            .map(|c| Claim {
                source: c.source,
                object: c.object,
                value: c.value,
            })
            .collect();

        let vote = majority_vote(data.n_objects, &claims);
        let tf = truthfinder(
            data.n_sources,
            data.n_objects,
            &claims,
            &TruthFinderConfig::default(),
        );

        let accuracy = |pred: &dyn Fn(u32) -> Option<f64>| -> f64 {
            let mut correct = 0usize;
            let mut total = 0usize;
            for o in 0..data.n_objects as u32 {
                if let Some(v) = pred(o) {
                    total += 1;
                    correct += ((v - data.true_value[o as usize]).abs() < 1e-9) as usize;
                }
            }
            correct as f64 / total.max(1) as f64
        };
        let vote_acc = accuracy(&|o| vote[o as usize]);
        let tf_acc = accuracy(&|o| tf.predicted_value(o));
        println!(
            "{:<12.2} {:>10} {:>12.3} {:>12.3}",
            rel_bad,
            claims.len(),
            vote_acc,
            tf_acc
        );

        // show that trust separates the source populations
        if rel_bad == 0.15 {
            let avg = |good: bool| -> f64 {
                let xs: Vec<f64> = tf
                    .source_trust
                    .iter()
                    .zip(&data.source_is_good)
                    .filter(|&(_, &g)| g == good)
                    .map(|(&t, _)| t)
                    .collect();
                xs.iter().sum::<f64>() / xs.len() as f64
            };
            println!(
                "\nlearned trust at rel(bad)=0.15: good sources {:.3}, bad sources {:.3}",
                avg(true),
                avg(false)
            );
        }
    }
}
