//! Failover with a warm hand-off: evict a serving dataset, carry its
//! commuting-matrix cache across as a snapshot, and re-register a
//! replacement that answers its first query from cache instead of
//! re-paying the SpMM chains.
//!
//! The walkthrough covers all three snapshot paths:
//! 1. `Router::evict` → [`hin::serve::Evicted`] — in-process hand-off,
//! 2. `Router::register_warm` — restoring into a replacement,
//! 3. `Router::checkpoint` — the periodic to-disk variant that survives a
//!    crash, read back with `CacheSnapshot::read_from_file`.
//!
//! Run with: `cargo run --release --example failover`

use std::sync::Arc;
use std::time::Instant;

use hin::query::CacheSnapshot;
use hin::serve::{Router, RouterConfig, ServeConfig};
use hin::synth::DblpConfig;

fn main() {
    let data = DblpConfig {
        n_areas: 3,
        authors_per_area: 40,
        n_papers: 800,
        seed: 42,
        ..Default::default()
    }
    .generate();
    let hin = Arc::new(data.hin);

    let router = Router::new(RouterConfig {
        stripes: 2,
        serve: ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    });
    assert!(router.register("dblp", Arc::clone(&hin)));

    // warm the dataset with live traffic
    let query = "pathsim author-paper-venue-paper-author from author_a0_0";
    let t = Instant::now();
    let want = router.submit("dblp", query).wait().expect("first query");
    println!(
        "cold first query: {:.3} ms ({} results)",
        t.elapsed().as_secs_f64() * 1e3,
        want.items.len()
    );
    for a in 0..12 {
        let q = format!(
            "pathsim author-paper-venue-paper-author from author_a{}_{a}",
            a % 3
        );
        let _ = router.submit("dblp", q).wait();
    }

    // periodic checkpoint: every live dataset's cache to disk
    let dir = std::env::temp_dir().join(format!("hin-failover-example-{}", std::process::id()));
    let written = router.checkpoint(&dir).expect("checkpoint");
    for (key, path) in &written {
        println!("checkpointed {key} -> {}", path.display());
    }

    // failover: evict (drains in-flight queries) and hand the snapshot to
    // a replacement, which re-takes traffic warm
    let evicted = router.evict("dblp").expect("dblp was registered");
    println!(
        "evicted dblp: served {}, snapshot carries {} matrices ({} KiB)",
        evicted.stats.served,
        evicted.snapshot.len(),
        evicted.snapshot.bytes() / 1024,
    );
    let report = router
        .register_warm("dblp", Arc::clone(&hin), evicted.snapshot)
        .expect("key is free after evict");
    println!(
        "warm start: {} loaded, {} rejected",
        report.loaded, report.rejected
    );
    assert!(report.loaded > 0, "a warm start that loads nothing is cold");

    let t = Instant::now();
    let got = router.submit("dblp", query).wait().expect("warm query");
    println!(
        "warm first query: {:.3} ms (byte-identical: {})",
        t.elapsed().as_secs_f64() * 1e3,
        got == want
    );
    assert_eq!(got, want);

    // crash-style recovery: the same warm start, but from the checkpoint
    // file instead of an in-memory snapshot
    drop(router.evict("dblp").expect("still registered"));
    let snap = CacheSnapshot::read_from_file(&written[0].1).expect("read checkpoint");
    let report = router
        .register_warm("dblp", Arc::clone(&hin), snap)
        .expect("key is free after evict");
    assert!(report.loaded > 0 && !report.fingerprint_mismatch);
    let from_disk = router.submit("dblp", query).wait().expect("restored query");
    assert_eq!(from_disk, want);

    let stats = router.shutdown();
    let (_, d) = &stats.datasets[0];
    println!(
        "restored-from-disk server: {} warm entries loaded, {} rejected, {} misses",
        d.cache_warm_loaded, d.cache_warm_rejected, d.cache_misses
    );
    let _ = std::fs::remove_dir_all(&dir);
}
