//! Serving meta-path queries from a thread pool.
//!
//! Builds a synthetic DBLP-like world, starts a [`hin::serve::Server`]
//! with a bounded sharded cache, drives it from several client threads,
//! and prints the serving statistics: batches, cache reuse, evictions.
//!
//! Run with: `cargo run --release --example serve`

use std::sync::Arc;
use std::time::Instant;

use hin::query::CacheConfig;
use hin::serve::{ServeConfig, Server};
use hin::synth::DblpConfig;

fn main() {
    let data = DblpConfig {
        n_areas: 3,
        authors_per_area: 50,
        n_papers: 1_200,
        seed: 42,
        ..Default::default()
    }
    .generate();
    println!(
        "network: {} nodes, {} edges",
        data.hin.total_nodes(),
        data.hin.total_edges()
    );

    let server = Server::start(
        Arc::new(data.hin),
        ServeConfig {
            workers: 4,
            batch_max: 32,
            cache: CacheConfig::bounded(4 << 20), // 4 MiB
            ..ServeConfig::default()
        },
    );
    println!("server: 4 workers, 4 MiB bounded cache\n");

    // Several client threads, each with its own cloned handle, submit an
    // overlapping workload and wait for their own results.
    let started = Instant::now();
    let clients: Vec<_> = (0..3)
        .map(|c| {
            let handle = server.handle();
            std::thread::spawn(move || {
                let mut ok = 0usize;
                for a in 0..30 {
                    let anchor = format!("author_a{}_{}", (a + c) % 3, a);
                    // submit a burst, then wait — the in-flight overlap is
                    // what the dispatcher micro-batches
                    let tickets = [
                        handle.submit(format!(
                            "pathsim author-paper-venue-paper-author from {anchor}"
                        )),
                        handle.submit(format!("topk 5 author-paper-author from {anchor}")),
                        handle.submit(format!("pathcount author-paper-venue from {anchor}")),
                    ];
                    ok += tickets
                        .into_iter()
                        .map(|t| t.wait())
                        .filter(Result::is_ok)
                        .count();
                }
                ok
            })
        })
        .collect();
    let submitted: usize = clients.into_iter().map(|h| h.join().unwrap()).sum();

    // one more query from the main thread, then a ranked summary
    let venues = server
        .submit("rank venue-paper-author limit 5")
        .wait()
        .expect("rank query");
    println!("top venues by author-paper volume:");
    for (name, score) in &venues.items {
        println!("    {score:>8.1}  {name}");
    }

    let stats = server.shutdown();
    println!(
        "\nserved {} queries ({} errors) in {:.1} ms across {} micro-batches (max batch {})",
        stats.served,
        stats.errors,
        started.elapsed().as_secs_f64() * 1e3,
        stats.batches,
        stats.max_batch,
    );
    println!(
        "cache: {} entries / {} KiB resident, {} hits ({} via transpose), {} computed, {} evicted",
        stats.cache_len,
        stats.cache_bytes / 1024,
        stats.cache_hits,
        stats.cache_symmetry_hits,
        stats.cache_misses,
        stats.cache_evictions,
    );
    assert_eq!(submitted, 3 * 30 * 3, "every client query must succeed");
}
