//! Quickstart: build a small bibliographic network by hand, look at it
//! through the tutorial's three lenses — ranking, similarity, clustering.
//!
//! Run with: `cargo run --example quickstart`

use hin::clustering::{scan, ScanConfig};
use hin::core::{projection, HinBuilder};
use hin::ranking::{pagerank, top_k, PageRankConfig};
use hin::similarity::{commuting_matrix, top_k_pathsim, MetaPath};

fn main() {
    // --- 1. a database is an information network --------------------------
    // papers link authors and venues; that's already a heterogeneous graph
    let mut b = HinBuilder::new();
    let paper = b.add_type("paper");
    let author = b.add_type("author");
    let venue = b.add_type("venue");
    let writes = b.add_relation("written_by", paper, author);
    let published = b.add_relation("published_in", paper, venue);

    for (p, authors, v) in [
        ("rankclus", vec!["sun", "han", "zhao"], "EDBT"),
        ("netclus", vec!["sun", "yu", "han"], "KDD"),
        ("pathsim", vec!["sun", "han", "yan"], "VLDB"),
        ("simrank", vec!["jeh", "widom"], "KDD"),
        ("pagerank", vec!["brin", "page"], "WWW"),
        ("hits", vec!["kleinberg"], "SODA"),
        ("scan", vec!["xu", "yuruk", "feng"], "KDD"),
        ("truthfinder", vec!["yin", "han", "yu"], "TKDE"),
        ("distinct", vec!["yin", "han", "yu"], "ICDE"),
        ("crossmine", vec!["yin", "han", "yang", "yu"], "TKDE"),
    ] {
        for a in &authors {
            b.link(writes, p, a, 1.0).unwrap();
        }
        b.link(published, p, v, 1.0).unwrap();
    }
    let hin = b.build();
    println!(
        "network: {} nodes, {} edges",
        hin.total_nodes(),
        hin.total_edges()
    );
    println!("{}", hin.schema_dot());

    // --- 2. ranking: who matters in the co-author graph? ------------------
    let coauthor = projection::co_occurrence(&hin, author, paper).expect("relation exists");
    let ranks = pagerank(&coauthor, &PageRankConfig::default());
    println!("top authors by co-authorship PageRank:");
    for a in top_k(&ranks.scores, 5) {
        let node = hin::core::NodeRef {
            ty: author,
            id: a as u32,
        };
        println!("  {:<10} {:.4}", hin.node_name(node), ranks.scores[a]);
    }

    // --- 3. similarity: who are han's peers (PathSim on A-P-A)? ----------
    let apa = MetaPath::from_type_names(&hin, &["author", "paper", "author"]).expect("valid path");
    let m = commuting_matrix(&hin, &apa).expect("commutes");
    let han = hin.node_by_name(author, "han").expect("exists");
    println!("\nhan's peers under the A-P-A meta-path:");
    for (peer, score) in top_k_pathsim(&m, han.id as usize, 3) {
        let node = hin::core::NodeRef {
            ty: author,
            id: peer as u32,
        };
        println!("  {:<10} {:.3}", hin.node_name(node), score);
    }

    // --- 4. clustering: structural groups in the co-author graph ---------
    let result = scan(&coauthor, &ScanConfig { eps: 0.4, mu: 2 });
    println!(
        "\nSCAN finds {} structural cluster(s):",
        result.cluster_count
    );
    for c in 0..result.cluster_count {
        let members: Vec<&str> = result
            .roles
            .iter()
            .enumerate()
            .filter(|(_, role)| matches!(role, hin::clustering::ScanRole::Member(k) if *k == c))
            .map(|(v, _)| {
                hin.node_name(hin::core::NodeRef {
                    ty: author,
                    id: v as u32,
                })
            })
            .collect();
        println!("  cluster {c}: {members:?}");
    }
}
