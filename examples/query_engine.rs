//! Querying a bibliographic network with the meta-path engine.
//!
//! Builds a synthetic DBLP-like world, then asks it questions in the
//! engine's query language: peers of an author under different meta-paths,
//! influential venues, and the engine's own plan/cache diagnostics.
//!
//! Run with: `cargo run --release --example query_engine`

use hin::query::Engine;
use hin::synth::DblpConfig;

fn main() {
    let data = DblpConfig {
        n_areas: 3,
        authors_per_area: 50,
        n_papers: 1_200,
        seed: 42,
        ..Default::default()
    }
    .generate();
    println!(
        "network: {} nodes, {} edges\n",
        data.hin.total_nodes(),
        data.hin.total_edges()
    );

    let engine = Engine::new(data.hin);

    // EXPLAIN before executing: the planner chooses the multiplication
    // order from sparse cost estimates, not left-to-right.
    let plan = engine
        .plan("pathcount paper-author-paper-venue from paper_0")
        .unwrap();
    println!("plan for P-A-P-V: {plan}");
    println!("left-deep? {}\n", plan.root.is_left_deep());

    for query in [
        "topk 5 author-paper-author from author_a0_0",
        "topk 5 author-paper-venue-paper-author from author_a0_0",
        "rank venue-paper-author limit 5",
        "neighbors written_by from paper_17",
    ] {
        let out = engine.execute(query).expect("query");
        println!("> {query}");
        for (name, score) in &out.items {
            println!("    {score:>10.4}  {name} ({})", out.object_type);
        }
        println!();
    }

    // the same path again — served from the commuting-matrix cache
    engine
        .execute("topk 5 author-paper-venue-paper-author from author_a1_8")
        .expect("warm query");
    println!(
        "cache: {} entries, {} hits ({} via transpose), {} products computed",
        engine.cache_len(),
        engine.cache_hits(),
        engine.cache_symmetry_hits(),
        engine.cache_misses()
    );
}
