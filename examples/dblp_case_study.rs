//! DBLP case study (tutorial §6): turn a bibliographic database into an
//! information network, then mine it — NetClus net-clusters with per-area
//! rankings, RankClus venue clusters, and PathSim peer queries.
//!
//! Run with: `cargo run --release --example dblp_case_study`

use hin::clustering::{accuracy_hungarian, nmi};
use hin::netclus::{netclus, NetClusConfig};
use hin::rankclus::{rankclus, RankClusConfig};
use hin::ranking::top_k;
use hin::similarity::{commuting_matrix, top_k_pathsim, MetaPath};
use hin::synth::DblpConfig;

fn main() {
    let data = DblpConfig {
        n_areas: 4,
        venues_per_area: 5,
        authors_per_area: 80,
        n_papers: 2_000,
        noise: 0.06,
        seed: 2010,
        ..Default::default()
    }
    .generate();
    println!(
        "synthetic DBLP: {} papers, {} authors, {} venues, {} terms",
        data.hin.node_count(data.paper),
        data.hin.node_count(data.author),
        data.hin.node_count(data.venue),
        data.hin.node_count(data.term),
    );

    // ---- NetClus on the star network -------------------------------------
    let star = data.star();
    let nc = netclus(
        &star,
        &NetClusConfig {
            k: 4,
            seed: 42,
            ..Default::default()
        },
    );
    println!(
        "\nNetClus: NMI vs planted areas = {:.3} (accuracy {:.3}), {} iterations",
        nmi(&nc.assignments, &data.paper_area),
        accuracy_hungarian(&nc.assignments, &data.paper_area),
        nc.iterations,
    );
    let venue_arm = star.arm_by_name("venue").expect("venue arm");
    let author_arm = star.arm_by_name("author").expect("author arm");
    for c in 0..4 {
        println!("\nnet-cluster {c} (prior {:.2}):", nc.cluster_prior[c]);
        print!("  top venues : ");
        for v in top_k(&nc.arm_rank[c][venue_arm], 5) {
            print!("{} ", star.arms[venue_arm].names[v]);
        }
        print!("\n  top authors: ");
        for a in top_k(&nc.arm_rank[c][author_arm], 5) {
            print!("{} ", star.arms[author_arm].names[a]);
        }
        println!();
    }

    // ---- RankClus on the venue×author bi-typed view ---------------------
    let binet = data.venue_author_binet();
    let rc = rankclus(
        &binet,
        &RankClusConfig {
            k: 4,
            seed: 42,
            ..Default::default()
        },
    );
    let venue_acc = accuracy_hungarian(&rc.assignments, &data.venue_area);
    println!("\nRankClus venue clustering accuracy: {:.3}", venue_acc);
    for c in 0..4 {
        let members: Vec<&str> = (0..binet.nx)
            .filter(|&x| rc.assignments[x] == c)
            .map(|x| binet.x_names[x].as_str())
            .collect();
        println!("  cluster {c}: {members:?}");
    }

    // ---- PathSim: peers of a prolific author under A-P-V-P-A ------------
    let apvpa =
        MetaPath::from_type_names(&data.hin, &["author", "paper", "venue", "paper", "author"])
            .expect("valid meta-path");
    let m = commuting_matrix(&data.hin, &apvpa).expect("commuting matrix");
    let query = 0usize; // author_a0_0: the most prolific author of area 0
    println!("\nPathSim peers of author_a0_0 (A-P-V-P-A):");
    for (peer, score) in top_k_pathsim(&m, query, 5) {
        println!(
            "  {:<16} {:.3}  (planted area {})",
            data.hin.node_name(hin::core::NodeRef {
                ty: data.author,
                id: peer as u32
            }),
            score,
            data.author_area[peer],
        );
    }
}
