//! Database → information network (tutorial §1): build a small relational
//! database with foreign keys, extract the heterogeneous network, measure
//! it, and dice it into an OLAP network cube.
//!
//! Run with: `cargo run --example db_to_network`

use hin::olap::{Dimension, NetworkCube};
use hin::relational::{extract_network, ColumnType, Database, ExtractConfig, TableSchema, Value};
use hin::stats;

fn main() {
    // ---- a tiny bibliographic database -----------------------------------
    let mut db = Database::new();
    db.create_table(
        TableSchema::new("venue")
            .column("vid", ColumnType::Int)
            .column("name", ColumnType::Str)
            .primary_key("vid"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("author")
            .column("aid", ColumnType::Int)
            .column("name", ColumnType::Str)
            .primary_key("aid"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("paper")
            .column("pid", ColumnType::Int)
            .column("title", ColumnType::Str)
            .column("vid", ColumnType::Int)
            .column("year", ColumnType::Int)
            .primary_key("pid")
            .foreign_key("vid", "venue"),
    )
    .unwrap();
    db.create_table(
        TableSchema::new("writes")
            .column("wid", ColumnType::Int)
            .column("aid", ColumnType::Int)
            .column("pid", ColumnType::Int)
            .primary_key("wid")
            .foreign_key("aid", "author")
            .foreign_key("pid", "paper"),
    )
    .unwrap();

    let venues = ["EDBT", "KDD", "VLDB"];
    for (i, v) in venues.iter().enumerate() {
        db.insert("venue", vec![Value::Int(i as i64), Value::str(v)])
            .unwrap();
    }
    let authors = ["sun", "han", "yan", "yu", "yin", "xu"];
    for (i, a) in authors.iter().enumerate() {
        db.insert("author", vec![Value::Int(i as i64), Value::str(a)])
            .unwrap();
    }
    let papers: [(&str, i64, i64, &[i64]); 6] = [
        ("rankclus", 0, 2009, &[0, 1]),
        ("netclus", 1, 2009, &[0, 3, 1]),
        ("pathsim", 2, 2011, &[0, 1, 2]),
        ("truthfinder", 1, 2008, &[4, 1, 3]),
        ("distinct", 1, 2007, &[4, 1, 3]),
        ("scan", 1, 2007, &[5]),
    ];
    let mut wid = 0i64;
    for (p, (title, vid, year, auth)) in papers.iter().enumerate() {
        db.insert(
            "paper",
            vec![
                Value::Int(p as i64),
                Value::str(title),
                Value::Int(*vid),
                Value::Int(*year),
            ],
        )
        .unwrap();
        for &a in *auth {
            db.insert(
                "writes",
                vec![Value::Int(wid), Value::Int(a), Value::Int(p as i64)],
            )
            .unwrap();
            wid += 1;
        }
    }

    // ---- extraction -------------------------------------------------------
    let mut config = ExtractConfig::default();
    for t in ["venue", "author", "paper"] {
        config.label_columns.insert(
            t.to_string(),
            if t == "paper" { "title" } else { "name" }.to_string(),
        );
    }
    let ex = extract_network(&db, &config).unwrap();
    println!("extracted network:\n{}", ex.hin.schema_dot());

    // ---- measurement (tutorial §2(a)) ------------------------------------
    let author_ty = ex.type_of_table["author"];
    let paper_ty = ex.type_of_table["paper"];
    let co = hin::core::projection::co_occurrence(&ex.hin, author_ty, paper_ty).unwrap();
    println!("co-author graph density: {:.3}", stats::density(&co));
    let comps = stats::connected_components(&co);
    println!("connected components:    {}", comps.count);
    let bc = stats::betweenness(&co, true);
    let star = (0..co.nrows())
        .max_by(|&a, &b| bc[a].partial_cmp(&bc[b]).unwrap())
        .unwrap();
    println!(
        "highest betweenness:     {}",
        ex.hin.node_name(hin::core::NodeRef {
            ty: author_ty,
            id: star as u32
        })
    );

    // ---- OLAP cube over (venue, year) ------------------------------------
    let star_net = hin::core::StarNet::from_hin_with_center(&ex.hin, paper_ty).unwrap();
    let year_of = |p: usize| -> u32 {
        db.table("paper")
            .unwrap()
            .value(p, "year")
            .unwrap()
            .as_int()
            .unwrap() as u32
            - 2007
    };
    let years = Dimension::new(
        "year",
        vec![
            "2007".into(),
            "2008".into(),
            "2009".into(),
            "2010".into(),
            "2011".into(),
        ],
        (0..star_net.n_center).map(year_of).collect(),
    );
    let cube = NetworkCube::build(star_net, vec![years]);
    println!("\npapers per year (network cube cells):");
    let mut cells: Vec<_> = cube.cells().map(|(c, v)| (c.clone(), v.size())).collect();
    cells.sort();
    for (coords, size) in cells {
        println!(
            "  {}: {} paper(s)",
            cube.dimensions()[0].values[coords[0] as usize],
            size
        );
    }
}
